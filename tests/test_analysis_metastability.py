"""Tests for the metastability MTBF model."""

from __future__ import annotations

import pytest

from repro.analysis.metastability import (
    FlipFlopMetastabilityModel,
    synchronizer_mtbf_years,
)


class TestFlipFlopModel:
    def test_mtbf_grows_exponentially_with_resolve_time(self):
        flop = FlipFlopMetastabilityModel(tau_ps=10.0, t0_ps=20.0)
        short = flop.mtbf_seconds(100e6, 1e6, resolve_time_ps=100.0)
        longer = flop.mtbf_seconds(100e6, 1e6, resolve_time_ps=200.0)
        assert longer / short == pytest.approx(pytest.approx(2.2e4, rel=0.2))

    def test_mtbf_decreases_with_clock_and_data_rate(self):
        flop = FlipFlopMetastabilityModel()
        base = flop.mtbf_seconds(100e6, 1e6, 500.0)
        faster_clock = flop.mtbf_seconds(200e6, 1e6, 500.0)
        faster_data = flop.mtbf_seconds(100e6, 2e6, 500.0)
        assert faster_clock == pytest.approx(base / 2)
        assert faster_data == pytest.approx(base / 2)

    def test_huge_resolve_time_stays_finite(self):
        flop = FlipFlopMetastabilityModel()
        assert flop.mtbf_seconds(100e6, 1e6, 1e6) < float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            FlipFlopMetastabilityModel(tau_ps=0.0)
        flop = FlipFlopMetastabilityModel()
        with pytest.raises(ValueError):
            flop.mtbf_seconds(0.0, 1e6, 100.0)
        with pytest.raises(ValueError):
            flop.mtbf_seconds(1e6, 1e6, -1.0)


class TestSynchronizerMTBF:
    def test_single_flop_is_marginal_two_flop_is_safe(self):
        # The reason the paper adds the two-flop synchronizer: when the
        # downstream logic eats most of the cycle, a single sampling flop has
        # almost no resolving time and its MTBF collapses; the extra stage
        # adds a full clock period of resolution and makes failures
        # astronomically rare.
        one_stage = synchronizer_mtbf_years(
            clock_frequency_mhz=100.0,
            data_frequency_mhz=100.0,
            synchronizer_stages=1,
            logic_settling_ps=9_950.0,
        )
        two_stage = synchronizer_mtbf_years(
            clock_frequency_mhz=100.0,
            data_frequency_mhz=100.0,
            synchronizer_stages=2,
            logic_settling_ps=9_950.0,
        )
        assert one_stage < 1.0
        assert two_stage > 1e6
        assert two_stage > one_stage

    def test_each_stage_multiplies_mtbf(self):
        # Use a slow-resolving flop so the exponent stays below the finite
        # cap and the stage-to-stage growth is visible.
        slow_flop = FlipFlopMetastabilityModel(tau_ps=100.0, t0_ps=20.0)
        two = synchronizer_mtbf_years(100.0, 1.0, synchronizer_stages=2, flop=slow_flop)
        three = synchronizer_mtbf_years(100.0, 1.0, synchronizer_stages=3, flop=slow_flop)
        assert three > two

    def test_faster_clock_needs_more_stages(self):
        slow_clock = synchronizer_mtbf_years(50.0, 50.0, synchronizer_stages=2)
        fast_clock = synchronizer_mtbf_years(400.0, 400.0, synchronizer_stages=2)
        assert fast_clock < slow_clock

    def test_validation(self):
        with pytest.raises(ValueError):
            synchronizer_mtbf_years(100.0, 1.0, synchronizer_stages=0)
        with pytest.raises(ValueError):
            synchronizer_mtbf_years(100.0, 1.0, logic_settling_ps=20_000.0)

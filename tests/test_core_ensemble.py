"""Tests for the vectorized delay-line ensemble engine.

The load-bearing property: everything the ensemble computes in one batch --
per-cell delays, closed-form locks, transfer curves -- must agree with the
scalar models run instance by instance, including the cycle-accurate
controllers (`ProposedController` / `ShiftRegisterController`) the batch
locks replace with fixed-point formulas.  The scalar transfer curves used as
references below are rebuilt with the seed-style per-word loops, not with
`transfer_curve` (which is itself a thin view of the ensemble engine now).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import batch_linearity_metrics, linearity_metrics
from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    ShiftRegisterController,
    TuningOrder,
)
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.ensemble import ConventionalEnsemble, ProposedEnsemble
from repro.core.linearity import transfer_curve
from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.core.yield_analysis import linearity_yield
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import BatchVariationSample, VariationModel

LIBRARY = intel32_like_library()

corners = st.sampled_from(list(ProcessCorner))
frequencies = st.sampled_from([50.0, 100.0, 200.0])
seeds = st.integers(min_value=0, max_value=2**16)


def scalar_proposed_curve(line: ProposedDelayLine, tap_sel, conditions):
    """Seed-style per-word reference curve for the proposed scheme."""
    words = np.arange(1, line.mapper.max_word + 1)
    return np.array(
        [line.output_delay_ps(int(word), int(tap_sel), conditions) for word in words]
    )


def scalar_conventional_curve(line: ConventionalDelayLine, steps, conditions):
    """Seed-style reference curve for the conventional scheme."""
    levels = line.levels_for_steps(int(steps))
    taps = line.tap_delays_ps(levels, conditions)
    words = np.arange(1, line.config.num_cells)
    return np.asarray(taps[words - 1], dtype=float)


class TestBatchVariationSample:
    def test_sample_batch_matches_stacked_scalar_samples(self):
        model = VariationModel(random_sigma=0.05, gradient_peak=0.01, seed=11)
        batch = model.sample_batch(4, 16, 3, first_instance=7)
        assert batch.multipliers.shape == (4, 16, 3)
        for i in range(4):
            scalar = model.sample(16, 3, instance=7 + i)
            np.testing.assert_array_equal(
                batch.instance(i).multipliers, scalar.multipliers
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchVariationSample(multipliers=np.ones((4, 16)))
        with pytest.raises(ValueError):
            VariationModel().sample_batch(0, 16, 2)


class TestProposedEnsembleEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(frequency=frequencies, corner=corners, seed=seeds)
    def test_lock_and_curves_match_scalar(self, frequency, corner, seed):
        conditions = OperatingConditions(corner=corner)
        design = design_proposed(DesignSpec(frequency, 5), LIBRARY)
        config = design.build_line(library=LIBRARY).config
        model = VariationModel(random_sigma=0.05, gradient_peak=0.01, seed=seed)
        ensemble = ProposedEnsemble.sample(config, 3, model, library=LIBRARY)

        calibration = ensemble.lock(conditions)
        curves = ensemble.transfer_curves(conditions, calibration=calibration)
        for i in range(3):
            line = design.build_line(
                library=LIBRARY, variation=ensemble.batch.instance(i)
            )
            scalar = ProposedController(line).lock(conditions)
            assert int(calibration.control_state[i]) == scalar.control_state
            assert bool(calibration.locked[i]) == scalar.locked
            assert int(calibration.lock_cycles[i]) == scalar.lock_cycles
            assert calibration.locked_delay_ps[i] == pytest.approx(
                scalar.locked_delay_ps, abs=1e-9
            )
            reference = scalar_proposed_curve(line, scalar.control_state, conditions)
            assert np.max(np.abs(curves.delays_ps[i] - reference)) < 1e-6

    @settings(max_examples=15, deadline=None)
    @given(
        num_cells=st.sampled_from([4, 8, 16]),
        buffers=st.integers(min_value=1, max_value=3),
        period_scale=st.floats(min_value=0.01, max_value=20.0),
        seed=seeds,
    )
    def test_saturated_and_no_lock_edges_match_scalar(
        self, num_cells, buffers, period_scale, seed
    ):
        # Deliberately mis-sized lines: the clock period ranges from far too
        # short (the first tap already exceeds the half period -> bottom
        # saturation) to far too long (the whole line cannot bracket it ->
        # top saturation).  Both controllers must agree that no lock exists.
        typical_total = num_cells * buffers * 40.0
        config = ProposedDelayLineConfig(
            num_cells=num_cells,
            buffers_per_cell=buffers,
            clock_period_ps=period_scale * typical_total,
        )
        model = VariationModel(random_sigma=0.08, gradient_peak=0.02, seed=seed)
        ensemble = ProposedEnsemble.sample(config, 2, model, library=LIBRARY)
        conditions = OperatingConditions.typical()
        calibration = ensemble.lock(conditions)
        for i in range(2):
            line = ProposedDelayLine(
                config, library=LIBRARY, variation=ensemble.batch.instance(i)
            )
            scalar = ProposedController(line).lock(conditions)
            assert int(calibration.control_state[i]) == scalar.control_state
            assert bool(calibration.locked[i]) == scalar.locked
            assert int(calibration.lock_cycles[i]) == scalar.lock_cycles

    def test_ideal_ensemble_replicates_nominal_line(self):
        config = design_proposed(DesignSpec(100.0, 6), LIBRARY).build_line().config
        ensemble = ProposedEnsemble(config, library=LIBRARY, num_instances=3)
        conditions = OperatingConditions.typical()
        taps = ensemble.tap_delays_ps(conditions)
        line = ProposedDelayLine(config, library=LIBRARY)
        np.testing.assert_array_equal(taps[0], line.tap_delays_ps(conditions))
        np.testing.assert_array_equal(taps[0], taps[1])

    def test_transfer_curve_is_a_view_of_the_ensemble(self, proposed_line):
        conditions = OperatingConditions.typical()
        scalar_view = transfer_curve(proposed_line, conditions)
        ensemble = ProposedEnsemble.from_line(proposed_line)
        batch = ensemble.transfer_curves(conditions)
        np.testing.assert_array_equal(scalar_view.delays_ps, batch.delays_ps[0])
        np.testing.assert_array_equal(scalar_view.input_words, batch.input_words)

    def test_tap_sel_validation(self):
        config = design_proposed(DesignSpec(100.0, 5), LIBRARY).build_line().config
        ensemble = ProposedEnsemble(config, library=LIBRARY, num_instances=2)
        conditions = OperatingConditions.typical()
        with pytest.raises(ValueError, match="tap_sel"):
            ensemble.transfer_curves(conditions, tap_sel=np.array([0, 1]))
        with pytest.raises(ValueError):
            ensemble.transfer_curves(conditions, tap_sel=np.array([1]))

    def test_batch_shape_validation(self):
        config = design_proposed(DesignSpec(100.0, 5), LIBRARY).build_line().config
        batch = VariationModel(seed=3).sample_batch(2, 8, 2)
        with pytest.raises(ValueError, match="does not match"):
            ProposedEnsemble(config, library=LIBRARY, batch=batch)
        good = VariationModel(seed=3).sample_batch(
            2, config.num_cells, config.buffers_per_cell
        )
        with pytest.raises(ValueError, match="conflicts"):
            ProposedEnsemble(config, library=LIBRARY, batch=good, num_instances=5)


class TestConventionalEnsembleEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        frequency=frequencies,
        corner=corners,
        order=st.sampled_from(list(TuningOrder)),
        seed=seeds,
    )
    def test_lock_and_curves_match_scalar(self, frequency, corner, order, seed):
        conditions = OperatingConditions(corner=corner)
        design = design_conventional(DesignSpec(frequency, 5), LIBRARY)
        config = design.build_line(library=LIBRARY, tuning_order=order).config
        model = VariationModel(random_sigma=0.05, gradient_peak=0.01, seed=seed)
        ensemble = ConventionalEnsemble.sample(config, 3, model, library=LIBRARY)

        calibration = ensemble.lock(conditions)
        curves = ensemble.transfer_curves(conditions, calibration=calibration)
        for i in range(3):
            line = design.build_line(
                library=LIBRARY,
                tuning_order=order,
                variation=ensemble.batch.instance(i),
            )
            scalar = ShiftRegisterController(line).lock(conditions)
            assert int(calibration.control_state[i]) == scalar.control_state
            assert bool(calibration.locked[i]) == scalar.locked
            assert int(calibration.lock_cycles[i]) == scalar.lock_cycles
            assert calibration.locked_delay_ps[i] == pytest.approx(
                scalar.locked_delay_ps, abs=1e-9
            )
            reference = scalar_conventional_curve(
                line, scalar.control_state, conditions
            )
            assert np.max(np.abs(curves.delays_ps[i] - reference)) < 1e-6

    @settings(max_examples=10, deadline=None)
    @given(period_scale=st.floats(min_value=0.05, max_value=10.0), seed=seeds)
    def test_saturation_edges_match_scalar(self, period_scale, seed):
        # Short periods make the line over-long from step 0 (the slow-corner
        # failure of paper fig37); long periods exhaust the shift register
        # (up_limit).  The batch first-crossing must stop exactly where the
        # scalar controller does in both cases.
        config = ConventionalDelayLineConfig(
            num_cells=8,
            branches=3,
            buffers_per_element=2,
            clock_period_ps=period_scale * 8 * 2 * 40.0,
            tuning_order=TuningOrder.ROUND_ROBIN,
        )
        model = VariationModel(random_sigma=0.08, gradient_peak=0.02, seed=seed)
        ensemble = ConventionalEnsemble.sample(config, 2, model, library=LIBRARY)
        conditions = OperatingConditions.typical()
        calibration = ensemble.lock(conditions)
        for i in range(2):
            line = ConventionalDelayLine(
                config, library=LIBRARY, variation=ensemble.batch.instance(i)
            )
            scalar = ShiftRegisterController(line).lock(conditions)
            assert int(calibration.control_state[i]) == scalar.control_state
            assert bool(calibration.locked[i]) == scalar.locked
            assert int(calibration.lock_cycles[i]) == scalar.lock_cycles

    def test_levels_schedule_matches_scalar_bookkeeping(self):
        config = ConventionalDelayLineConfig(
            num_cells=8,
            branches=4,
            buffers_per_element=1,
            clock_period_ps=3000.0,
            tuning_order=TuningOrder.DISTRIBUTED,
        )
        ensemble = ConventionalEnsemble(config, library=LIBRARY)
        line = ConventionalDelayLine(config, library=LIBRARY)
        schedule = ensemble.levels_schedule()
        assert schedule.shape == (config.max_adjustment_steps + 1, 8)
        for steps in range(config.max_adjustment_steps + 1):
            np.testing.assert_array_equal(
                schedule[steps], line.levels_for_steps(steps)
            )

    def test_oversized_variation_sample_accepted_like_the_scalar_line(self):
        # The scalar line accepts samples wider than the longest branch
        # (extra buffers are never active); the ensemble view must too.
        config = ConventionalDelayLineConfig(
            num_cells=8, branches=3, buffers_per_element=2, clock_period_ps=3000.0
        )
        sample = VariationModel(seed=13).sample(num_cells=8, buffers_per_cell=10)
        line = ConventionalDelayLine(config, library=LIBRARY, variation=sample)
        conditions = OperatingConditions.typical()
        curve = transfer_curve(line, conditions)  # seed behaviour: no raise
        levels = line.levels_for_steps(
            ShiftRegisterController(line).lock(conditions).control_state
        )
        taps = line.tap_delays_ps(levels, conditions)
        np.testing.assert_array_equal(curve.delays_ps, taps[:-1])

    def test_levels_validation(self):
        config = ConventionalDelayLineConfig(
            num_cells=8, branches=3, buffers_per_element=1, clock_period_ps=3000.0
        )
        ensemble = ConventionalEnsemble(config, library=LIBRARY, num_instances=2)
        conditions = OperatingConditions.typical()
        with pytest.raises(ValueError):
            ensemble.cell_delays_ps(np.zeros((3, 8), dtype=int), conditions)
        bad = np.zeros(8, dtype=int)
        bad[0] = 3
        with pytest.raises(ValueError, match="out of range"):
            ensemble.cell_delays_ps(bad, conditions)


class TestBatchMetrics:
    def test_batch_metrics_match_scalar_rows(self):
        rng = np.random.default_rng(5)
        curves = np.cumsum(rng.uniform(0.5, 1.5, size=(6, 40)), axis=1)
        curves[2, 10] = curves[2, 9] - 0.1  # one non-monotonic row
        batch = batch_linearity_metrics(curves)
        for i in range(6):
            scalar = linearity_metrics(curves[i])
            assert batch.max_dnl_lsb[i] == pytest.approx(scalar.max_dnl_lsb)
            assert batch.max_inl_lsb[i] == pytest.approx(scalar.max_inl_lsb)
            assert batch.rms_inl_lsb[i] == pytest.approx(scalar.rms_inl_lsb)
            assert bool(batch.monotonic[i]) == scalar.monotonic
            assert int(batch.distinct_levels[i]) == scalar.distinct_levels
            assert batch.instance(i) == scalar

    def test_linearity_metrics_rejects_batches(self):
        with pytest.raises(ValueError, match="one curve"):
            linearity_metrics(np.ones((2, 5)))

    def test_degenerate_batch_rejected(self):
        flat = np.ones((2, 5))
        with pytest.raises(ValueError, match="degenerate"):
            batch_linearity_metrics(flat)


class TestLinearityYield:
    def test_result_shapes_and_consistency(self):
        result = linearity_yield(
            scheme="proposed",
            spec=DesignSpec(100.0, 5),
            conditions=OperatingConditions.typical(),
            variation=VariationModel(seed=9),
            num_instances=32,
            error_limit_fraction=0.05,
            library=LIBRARY,
        )
        assert result.num_instances == 32
        assert result.passes.shape == (32,)
        assert 0.0 <= result.linearity_yield <= 1.0
        assert result.linearity_yield == pytest.approx(result.passes.mean())
        assert result.lock_yield == pytest.approx(result.locked.mean())
        # The pass mask is consistent with the reported metrics.
        expected = (
            (result.max_error_fraction_of_period <= 0.05)
            & result.monotonic
            & result.locked
        )
        np.testing.assert_array_equal(result.passes, expected)

    def test_unknown_scheme_and_bad_limits_rejected(self):
        spec = DesignSpec(100.0, 5)
        conditions = OperatingConditions.typical()
        with pytest.raises(ValueError, match="unknown scheme"):
            linearity_yield("hybrid", spec, conditions, num_instances=2)
        with pytest.raises(ValueError, match="must be positive"):
            linearity_yield(
                "proposed", spec, conditions, num_instances=2, dnl_limit_lsb=0.0
            )
        with pytest.raises(ValueError):
            linearity_yield("proposed", spec, conditions, num_instances=0)

    def test_conventional_slow_corner_lock_collapse(self):
        # The paper's 6-bit 100 MHz sizing: at the slow corner even the
        # all-minimum line overshoots the period (fig37's saturation), so
        # only a sliver of mismatched instances lock.
        result = linearity_yield(
            scheme="conventional",
            spec=DesignSpec(100.0, 6),
            conditions=OperatingConditions.slow(),
            variation=VariationModel(seed=9),
            num_instances=64,
            library=LIBRARY,
        )
        assert result.lock_yield < 0.2
        assert result.linearity_yield <= result.lock_yield

"""Property suite for mission profiles, thermal epochs and mission yield.

Three contracts, hypothesis-tested where the statement is universal:

* **Composition exactness** -- a composed mission evaluates each segment's
  scenario at the segment-local index, so the mission is bit-identical to
  running its segments back-to-back (the :class:`OffsetLoad` equivalence),
  and ``segment_windows`` tiles any run length exactly.
* **Chunk invariance** -- :class:`MissionGenerator` keys instance ``i``'s
  mission on ``(seed, MISSION_STREAM_TAG, i)``, so any chunking of an
  instance range tiles the one-shot mission list bit for bit, and the
  pipeline's mission/thermal path preserves its own bitwise identities
  (constant-25 degC trace == vanilla run; epoch splitting at constant
  temperature == the unsplit run; per-instance copies of one mission ==
  the shared-load path).
* **Scoring** -- :func:`mission_yield` attributes failures per segment and
  its summary stays JSON-serializable.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter.load import ConstantLoad, LineTransient, RampLoad, ReferenceStep
from repro.converter.missions import (
    MissionGenerator,
    MissionProfile,
    MissionSegment,
    OffsetLoad,
)
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    ComponentVariation,
    MissionSpec,
    MissionYieldResult,
    component_correlation_preset,
    mission_yield,
)
from repro.pipeline import ChunkedSiliconToRegulation
from repro.technology.corners import OperatingConditions
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import VariationModel

GENERATOR = MissionGenerator(total_periods=96, num_segments=5, seed=11)


def _resistance_trace(mission: MissionProfile, periods: int) -> list[float]:
    return [mission.resistance_at(t) for t in range(periods)]


# ---------------------------------------------------------------------------
# Composition exactness.
# ---------------------------------------------------------------------------


class TestMissionComposition:
    @given(instance=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_segments_evaluate_at_local_index(self, instance: int) -> None:
        """The composed mission == each segment's scenario run from zero."""
        mission = GENERATOR.mission(instance)
        for segment, start in zip(mission.segments, mission.segment_starts):
            assert segment.load is not None
            for local in range(segment.duration_periods):
                assert mission.resistance_at(start + local) == (
                    segment.load.resistance_at(local)
                )

    @given(
        instance=st.integers(min_value=0, max_value=40),
        offset=st.integers(min_value=0, max_value=95),
    )
    @settings(max_examples=30, deadline=None)
    def test_offset_load_equivalence(self, instance: int, offset: int) -> None:
        """``OffsetLoad(mission, k)`` replays the mission's ``[k, ...)`` tail."""
        mission = GENERATOR.mission(instance)
        shifted = OffsetLoad.wrap(mission, offset)
        for local in range(12):
            assert shifted.resistance_at(local) == (
                mission.resistance_at(offset + local)
            )

    @given(
        instance=st.integers(min_value=0, max_value=40),
        periods=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_windows_tile_the_run_exactly(
        self, instance: int, periods: int
    ) -> None:
        mission = GENERATOR.mission(instance)
        windows = mission.segment_windows(periods)
        assert windows[0][0] == 0
        assert windows[-1][1] == periods
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert end == start
        assert all(start < end for start, end in windows)

    def test_tail_holds_the_final_segment(self) -> None:
        ramp = RampLoad(
            start_ohm=2.0, end_ohm=1.0, ramp_start_period=0, ramp_end_period=6
        )
        mission = MissionProfile(
            segments=(
                MissionSegment(duration_periods=5, load=ConstantLoad(2.0)),
                MissionSegment(duration_periods=4, load=ramp),
            )
        )
        assert mission.total_periods == 9
        for overhang in range(6):
            assert mission.resistance_at(9 + overhang) == (
                ramp.resistance_at(4 + overhang)
            )

    def test_reference_and_source_channels(self) -> None:
        mission = MissionProfile(
            segments=(
                MissionSegment(duration_periods=10),
                MissionSegment(
                    duration_periods=10,
                    reference=ReferenceStep(
                        initial_v=0.9, final_v=1.1, step_period=4
                    ),
                    source=LineTransient(
                        nominal_v=1.8,
                        disturbed_v=1.5,
                        start_period=2,
                        end_period=6,
                    ),
                ),
            ),
            default_reference_v=0.9,
            default_source_v=1.8,
        )
        # Defaults hold in the first segment; the second segment's scenarios
        # run at the segment-local index (the step fires at global 14).
        assert mission.reference_at(0) == 0.9
        assert mission.reference_at(13) == 0.9
        assert mission.reference_at(14) == 1.1
        assert mission.voltage_at(11) == 1.8
        assert mission.voltage_at(12) == 1.5
        assert mission.voltage_at(16) == 1.8


# ---------------------------------------------------------------------------
# Chunk invariance and determinism of the generator.
# ---------------------------------------------------------------------------


class TestMissionGenerator:
    @given(split=st.integers(min_value=1, max_value=11))
    @settings(max_examples=25, deadline=None)
    def test_mission_stream_is_chunk_invariant(self, split: int) -> None:
        whole = GENERATOR.missions(12)
        head = GENERATOR.missions(split)
        tail = GENERATOR.missions(12 - split, first_instance=split)
        for one, other in zip(whole, head + tail):
            assert one == other
            assert _resistance_trace(one, 96) == _resistance_trace(other, 96)

    def test_missions_are_deterministic_across_generators(self) -> None:
        twin = MissionGenerator(total_periods=96, num_segments=5, seed=11)
        for instance in (0, 3, 17):
            assert GENERATOR.mission(instance) == twin.mission(instance)

    def test_instances_draw_distinct_missions(self) -> None:
        traces = {
            tuple(_resistance_trace(GENERATOR.mission(instance), 96))
            for instance in range(8)
        }
        assert len(traces) > 1

    @given(instance=st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_mission_structure_is_well_formed(self, instance: int) -> None:
        mission = GENERATOR.mission(instance)
        assert mission.num_segments == GENERATOR.num_segments
        assert mission.total_periods == GENERATOR.total_periods
        starts = mission.segment_starts
        assert starts[0] == 0
        assert all(a < b for a, b in zip(starts, starts[1:]))
        assert all(s.duration_periods >= 1 for s in mission.segments)
        levels = {GENERATOR.light_ohm, GENERATOR.heavy_ohm}
        for t in range(mission.total_periods):
            r = mission.resistance_at(t)
            assert min(levels) <= r <= max(levels)


# ---------------------------------------------------------------------------
# Temperature traces and thermal derating.
# ---------------------------------------------------------------------------


class TestThermal:
    @given(periods=st.integers(min_value=1, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_epochs_tile_any_run_length(self, periods: int) -> None:
        trace = TemperatureTrace(
            temperatures_c=(25.0, 85.0, 40.0),
            durations_periods=(7, 13, 5),
        )
        epochs = trace.epochs(periods)
        assert epochs[0][0] == 0
        assert epochs[-1][1] == periods
        for (_, end, _), (start, _, _) in zip(epochs, epochs[1:]):
            assert end == start
        for start, end, temperature in epochs:
            assert start < end
            for t in range(start, end):
                assert trace.temperature_at(t) == temperature

    def test_constant_trace_covers_everything(self) -> None:
        trace = TemperatureTrace.constant(85.0)
        assert trace.epochs(500) == [(0, 500, 85.0)]
        assert trace.temperature_at(10**6) == 85.0

    def test_trace_validation(self) -> None:
        with pytest.raises(ValueError):
            TemperatureTrace(temperatures_c=(), durations_periods=())
        with pytest.raises(ValueError):
            TemperatureTrace(temperatures_c=(25.0, 85.0), durations_periods=(5,))
        with pytest.raises(ValueError):
            TemperatureTrace(temperatures_c=(200.0,), durations_periods=(5,))
        with pytest.raises(ValueError):
            TemperatureTrace(temperatures_c=(25.0,), durations_periods=(0,))
        with pytest.raises(ValueError):
            TemperatureTrace(temperatures_c=(math.nan,), durations_periods=(5,))

    def test_derating_is_exact_identity_at_reference(self) -> None:
        derating = ThermalDerating()
        assert derating.resistance_factor(25.0) == 1.0
        assert derating.capacitance_factor(25.0) == 1.0
        variation = ComponentVariation(seed=5)
        from repro.converter.buck import BuckParameters

        fleet = variation.sample_batch(BuckParameters(), 8)
        derated = derating.derate(fleet, 25.0)
        for name in (
            "capacitance_f",
            "switch_resistance_ohm",
            "inductor_resistance_ohm",
            "inductance_h",
            "input_voltage_v",
        ):
            np.testing.assert_array_equal(
                getattr(fleet, name), getattr(derated, name)
            )

    def test_derating_moves_hot_electricals(self) -> None:
        derating = ThermalDerating()
        assert derating.resistance_factor(85.0) > 1.0
        assert derating.capacitance_factor(85.0) < 1.0
        with pytest.raises(ValueError):
            # A tempco large enough to drive the factor non-positive.
            ThermalDerating(capacitance_tempco_per_c=-0.05).capacitance_factor(
                85.0
            )


# ---------------------------------------------------------------------------
# The pipeline's mission/thermal path: bitwise identities.
# ---------------------------------------------------------------------------

PERIODS = 40
FLEET = 3


@pytest.fixture(scope="module")
def pipeline_factory():
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)

    def build(**overrides):
        kwargs = dict(
            variation=VariationModel(seed=7),
            component_variation=ComponentVariation(seed=7),
            reference_v=0.9,
        )
        kwargs.update(overrides)
        return ChunkedSiliconToRegulation(
            "proposed", spec, OperatingConditions.typical(), **kwargs
        )

    return build


_RESULT_FIELDS = (
    "output_voltages_v",
    "inductor_currents_a",
    "duty_words",
    "duty_fractions",
    "error_codes",
    "load_resistances_ohm",
)


def _assert_bitwise_equal(one, other) -> None:
    for name in _RESULT_FIELDS:
        np.testing.assert_array_equal(getattr(one, name), getattr(other, name))
    np.testing.assert_array_equal(
        one.switching_period_s, other.switching_period_s
    )


class TestMissionPipeline:
    def test_cold_trace_reproduces_vanilla_bitwise(self, pipeline_factory):
        """A constant 25 degC trace with derating == the vanilla path."""
        pipe = pipeline_factory()
        vanilla = pipe.run_chunk(0, FLEET, periods=PERIODS)
        traced = pipe.run_chunk(
            0,
            FLEET,
            periods=PERIODS,
            temperature_trace=TemperatureTrace.constant(25.0),
            thermal=ThermalDerating(),
        )
        _assert_bitwise_equal(vanilla.regulation, traced.regulation)

    def test_epoch_split_at_constant_temperature_is_exact(
        self, pipeline_factory
    ):
        """Splitting the run into epochs must not disturb the trajectory."""
        mission = GENERATOR.mission(0)
        pipe = pipeline_factory(load=mission)
        unsplit = pipe.run_chunk(
            0,
            FLEET,
            periods=PERIODS,
            temperature_trace=TemperatureTrace.constant(40.0),
            thermal=ThermalDerating(),
        )
        split = pipe.run_chunk(
            0,
            FLEET,
            periods=PERIODS,
            temperature_trace=TemperatureTrace(
                temperatures_c=(40.0, 40.0, 40.0),
                durations_periods=(11, 17, PERIODS - 28),
            ),
            thermal=ThermalDerating(),
        )
        _assert_bitwise_equal(unsplit.regulation, split.regulation)

    def test_shared_mission_equals_per_instance_copies(self, pipeline_factory):
        mission = GENERATOR.mission(2)
        shared = pipeline_factory(load=mission).run_chunk(
            0, FLEET, periods=PERIODS
        )
        per_instance = pipeline_factory().run_chunk(
            0, FLEET, periods=PERIODS, missions=[mission] * FLEET
        )
        _assert_bitwise_equal(shared.regulation, per_instance.regulation)

    def test_mission_chunking_is_bitwise_stable(self, pipeline_factory):
        pipe = pipeline_factory()
        whole = pipe.run_chunk(0, FLEET, periods=PERIODS, missions=GENERATOR)
        pieces = [
            pipe.run_chunk(0, 1, periods=PERIODS, missions=GENERATOR),
            pipe.run_chunk(1, FLEET - 1, periods=PERIODS, missions=GENERATOR),
        ]
        for name in _RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(whole.regulation, name),
                np.concatenate(
                    [getattr(p.regulation, name) for p in pieces], axis=1
                ),
            )

    def test_thermal_without_trace_raises(self, pipeline_factory):
        pipe = pipeline_factory()
        with pytest.raises(ValueError, match="temperature_trace"):
            pipe.run_chunk(
                0, FLEET, periods=PERIODS, thermal=ThermalDerating()
            )


# ---------------------------------------------------------------------------
# Mission scoring: the spec and the yield estimator.
# ---------------------------------------------------------------------------


class TestMissionSpec:
    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            MissionSpec(tolerance_v=0.0)
        with pytest.raises(ValueError):
            MissionSpec(tolerance_v=0.05, tail_fraction=0.0)
        with pytest.raises(ValueError):
            MissionSpec(tolerance_v=0.05, tail_fraction=1.5)
        with pytest.raises(ValueError):
            MissionSpec(tolerance_v=0.05, dip_limit_v=-0.1)
        with pytest.raises(ValueError):
            MissionSpec(tolerance_v=0.05, ripple_limit_v=0.0)

    def test_window_scoring(self) -> None:
        spec = MissionSpec(
            tolerance_v=0.05, dip_limit_v=0.2, ripple_limit_v=0.1
        )
        flat = np.full(16, 0.9)
        assert spec.window_passes(flat, 0.9)
        # Tail settles but the window dips below reference - dip_limit.
        dipped = flat.copy()
        dipped[2] = 0.6
        assert not spec.window_passes(dipped, 0.9)
        # Tail mean off by more than the tolerance.
        assert not spec.window_passes(np.full(16, 0.8), 0.9)
        # Tail ripple beyond the limit.
        rippled = flat.copy()
        rippled[-4:] = (0.84, 0.96, 0.84, 0.96)
        assert not spec.window_passes(rippled, 0.9)
        with pytest.raises(ValueError):
            spec.window_passes(np.empty(0), 0.9)


class TestMissionYield:
    @pytest.fixture(scope="class")
    def result(self) -> MissionYieldResult:
        return mission_yield(
            "proposed",
            DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6),
            OperatingConditions.typical(),
            missions=MissionGenerator(
                total_periods=60, num_segments=4, seed=3, heavy_ohm=1.4
            ),
            mission_spec=MissionSpec(tolerance_v=0.10, dip_limit_v=0.20),
            variation=VariationModel(seed=3),
            component_variation=ComponentVariation(seed=3),
            correlation=component_correlation_preset("passives"),
            temperature_trace=TemperatureTrace(
                temperatures_c=(25.0, 85.0), durations_periods=(30, 30)
            ),
            thermal=ThermalDerating(),
            num_instances=6,
        )

    def test_yield_and_attribution_are_consistent(
        self, result: MissionYieldResult
    ) -> None:
        assert result.num_instances == 6
        assert 0.0 <= result.mission_yield <= 1.0
        assert result.mission_yield == sum(result.passes) / 6
        failing = 6 - sum(result.passes)
        assert sum(result.first_failure_counts) == failing
        # Every first failure is also counted as a segment failure.
        for first, total in zip(
            result.first_failure_counts, result.segment_failure_counts
        ):
            assert first <= total

    def test_summary_is_json_serializable(
        self, result: MissionYieldResult
    ) -> None:
        payload = json.loads(json.dumps(result.summary()))
        assert payload["num_instances"] == 6
        assert payload["mission_yield"] == result.mission_yield
        if any(result.segment_failure_counts):
            assert payload["worst_segment"] is not None


# ---------------------------------------------------------------------------
# The fig15_mission experiment end to end, through the sweep layer.
# ---------------------------------------------------------------------------


class TestFig15MissionExperiment:
    def test_runs_through_sweep_cache_with_warm_hits(self, tmp_path) -> None:
        from repro.experiments import run_experiment
        from repro.sweep import SweepConfig, SweepOrchestrator

        kwargs = dict(mission_length=60, mission_seed=5, correlation="passives")
        with SweepOrchestrator(SweepConfig(cache_dir=tmp_path)) as sweep:
            cold = run_experiment("fig15_mission", sweep=sweep, **kwargs)
            assert (sweep.hits, sweep.misses) == (0, 4)
            warm = run_experiment("fig15_mission", sweep=sweep, **kwargs)
            assert (sweep.hits, sweep.misses) == (4, 4)
        assert warm.data == cold.data
        for scheme in ("proposed", "conventional"):
            for corner in ("typical", "slow"):
                entry = cold.data[scheme][corner]
                assert 0.0 <= entry["mission_yield"] <= 1.0
                assert entry["correlation"] == "passives"
                assert entry["mission_length"] == 60

    def test_validation_of_mission_flags(self) -> None:
        from repro.experiments import run_experiment

        with pytest.raises(ValueError, match="mission_length"):
            run_experiment("fig15_mission", mission_length=2)
        with pytest.raises(ValueError, match="correlation preset"):
            run_experiment("fig15_mission", correlation="bogus")

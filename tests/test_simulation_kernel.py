"""Tests for the event kernel, signals and waveform traces."""

from __future__ import annotations

import pytest

from repro.simulation.signals import Signal
from repro.simulation.simulator import SimulationError, Simulator
from repro.simulation.waveform import WaveformTrace, duty_cycle_of, pulse_widths


class TestSimulator:
    def test_time_starts_at_zero(self):
        assert Simulator().now_ps == 0.0

    def test_events_execute_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30.0, lambda: order.append("c"))
        sim.schedule(10.0, lambda: order.append("a"))
        sim.schedule(20.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_execute_fifo(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(5.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_at_requested_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(10))
        sim.schedule(50.0, lambda: fired.append(50))
        sim.run_until(20.0)
        assert fired == [10]
        assert sim.now_ps == 20.0
        assert sim.pending_events == 1

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(20.0, lambda: fired.append(20))
        sim.run_until(20.0)
        assert fired == [20]

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        results = []

        def first():
            results.append(sim.now_ps)
            sim.schedule(5.0, lambda: results.append(sim.now_ps))

        sim.schedule(10.0, first)
        sim.run()
        assert results == [10.0, 15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(100.0)
        with pytest.raises(SimulationError):
            sim.run_until(50.0)

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="combinational loop"):
            sim.run(max_events=100)

    def test_run_budget_is_exact(self):
        # Regression: the budget check used to run after incrementing, so
        # max_events + 1 events executed before the error fired.
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)
        assert sim.events_executed == 100

    def test_run_exactly_at_budget_succeeds(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=100)
        assert sim.events_executed == 100

    def test_run_until_budget_is_exact(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="exceeded 50 events"):
            sim.run_until(10.0, max_events=50)
        assert sim.events_executed == 50

    def test_run_until_exactly_at_budget_succeeds(self):
        sim = Simulator()
        for _ in range(50):
            sim.schedule(1.0, lambda: None)
        sim.run_until(10.0, max_events=50)
        assert sim.events_executed == 50
        assert sim.now_ps == 10.0

    def test_event_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestSignal:
    def test_set_records_trace_and_notifies(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        seen = []
        signal.connect(lambda s: seen.append(s.value))
        sim.schedule(10.0, lambda: signal.set(1))
        sim.run()
        assert seen == [1]
        assert signal.trace.transitions()[-1] == (10.0, 1)

    def test_setting_same_value_is_a_noop(self):
        sim = Simulator()
        signal = Signal(sim, "s", initial=1)
        count = []
        signal.connect(lambda s: count.append(1))
        signal.set(1)
        assert count == []

    def test_schedule_set_applies_transport_delay(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        signal.schedule_set(1, 25.0)
        sim.run()
        assert signal.value == 1
        assert signal.trace.times_ps[-1] == 25.0

    def test_width_masks_value(self):
        sim = Simulator()
        bus = Signal(sim, "bus", width=4)
        bus.set(0x1F)
        assert bus.value == 0x0F
        assert bus.max_value == 15

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Signal(Simulator(), "bad", width=0)

    def test_is_high(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        assert not signal.is_high()
        signal.set(1)
        assert signal.is_high()


class TestWaveformTrace:
    def _square_wave(self) -> WaveformTrace:
        trace = WaveformTrace(name="sq")
        for period in range(3):
            trace.record(period * 100.0, 1)
            trace.record(period * 100.0 + 40.0, 0)
        return trace

    def test_value_at_interpolates_piecewise_constant(self):
        trace = self._square_wave()
        assert trace.value_at(10.0) == 1
        assert trace.value_at(50.0) == 0
        assert trace.value_at(139.9) == 1
        assert trace.value_at(-5.0) == 0

    def test_edges(self):
        trace = self._square_wave()
        assert trace.edges(rising=True) == [0.0, 100.0, 200.0]
        assert trace.edges(rising=False) == [40.0, 140.0, 240.0]

    def test_duty_cycle_over_one_period(self):
        trace = self._square_wave()
        assert trace.duty_cycle(100.0, start_ps=0.0) == pytest.approx(0.4)
        assert duty_cycle_of(trace, 100.0, period_index=1) == pytest.approx(0.4)

    def test_high_time_handles_partial_windows(self):
        trace = self._square_wave()
        assert trace.high_time_ps(20.0, 60.0) == pytest.approx(20.0)

    def test_pulse_widths(self):
        widths = pulse_widths(self._square_wave())
        assert widths == pytest.approx([40.0, 40.0, 40.0])

    def test_out_of_order_record_rejected(self):
        trace = WaveformTrace(name="t")
        trace.record(10.0, 1)
        with pytest.raises(ValueError):
            trace.record(5.0, 0)

    def test_same_time_record_overwrites(self):
        trace = WaveformTrace(name="t")
        trace.record(10.0, 1)
        trace.record(10.0, 0)
        assert trace.transitions() == [(10.0, 0)]

    def test_to_ascii_produces_one_char_per_step(self):
        trace = self._square_wave()
        art = trace.to_ascii(stop_ps=100.0, step_ps=10.0)
        assert art.endswith("####______")

    def test_invalid_duty_period_rejected(self):
        with pytest.raises(ValueError):
            self._square_wave().duty_cycle(0.0)

"""Tests for the pluggable sweep executors, claiming and resumability.

The contracts gated here (see ``docs/sweeps.md``):

* every executor -- serial, process-pool, shared-cache -- produces
  bit-identical payloads;
* the process-pool executor streams results in completion order, so a
  straggler cell does not head-of-line-block the cells behind it;
* normal shutdown is graceful (``close``/``join``: in-flight cells
  finish); only an explicit ``abort`` terminates the pool;
* shared-cache claims are idempotent, owner-scoped, and stealable when
  stale (by TTL, by dead pid on the same host, or when unreadable);
* **resumability**: a SIGKILLed shared-cache sweep restarted against the
  same cache recomputes zero completed cells;
* two cooperating shared-cache workers drain one grid with each cell
  computed exactly once;
* the ``--progress`` stream follows its documented line format.
"""

from __future__ import annotations

import io
import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import main as runner_main
from repro.sweep import (
    MISS,
    ProcessPoolExecutor,
    ProgressReporter,
    ResultCache,
    SerialExecutor,
    SharedCacheExecutor,
    SweepConfig,
    SweepOrchestrator,
    WorkItem,
    canonical_json,
    cell_key,
    make_executor,
    pool_chunksize,
    sweep_map,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

# --- module-level cell functions (picklable into pool workers) -------------


def value_cell(params: dict) -> dict:
    return {"value": params["x"] * 0.1, "third": params["x"] / 3.0}


def straggler_cell(params: dict) -> dict:
    # Cell 0 is the straggler: everything dispatched after it finishes
    # long before it does.
    if params["x"] == 0:
        time.sleep(0.5)
    return {"x": params["x"]}


#: Set by the resumability test before its in-process re-run.
MARKER_DIR = {"path": ""}


def marking_cell(params: dict) -> dict:
    Path(MARKER_DIR["path"], f"x{params['x']}.pid{os.getpid()}").touch()
    return {"value": params["x"] * 3}


def _work_items(cells: list[dict], experiment_id: str) -> list[WorkItem]:
    return [
        WorkItem(index, cell, cell_key(experiment_id, cell))
        for index, cell in enumerate(cells)
    ]


# ---------------------------------------------------------------------------
# configuration and factory


class TestSweepConfig:
    def test_auto_selects_serial_for_one_worker(self):
        assert SweepConfig().executor_name == "serial"

    def test_auto_selects_process_pool_for_many_workers(self):
        assert SweepConfig(workers=4).executor_name == "process-pool"

    def test_explicit_executor_wins_over_auto(self, tmp_path):
        config = SweepConfig(workers=4, cache_dir=tmp_path, executor="shared-cache")
        assert config.executor_name == "shared-cache"

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SweepConfig(executor="gpu")

    def test_shared_cache_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            SweepConfig(executor="shared-cache")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"claim_ttl_s": 0.0},
            {"poll_interval_s": 0.0},
            {"progress_interval_s": -1.0},
        ],
        ids=["claim-ttl", "poll-interval", "progress-interval"],
    )
    def test_rejects_non_positive_timings(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs)

    def test_factory_builds_each_named_executor(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert isinstance(
            make_executor("serial", workers=1, cache=None), SerialExecutor
        )
        assert isinstance(
            make_executor("process-pool", workers=2, cache=None),
            ProcessPoolExecutor,
        )
        assert isinstance(
            make_executor("shared-cache", workers=1, cache=cache),
            SharedCacheExecutor,
        )

    def test_factory_rejects_shared_cache_without_cache(self):
        with pytest.raises(ValueError, match="cache"):
            make_executor("shared-cache", workers=1, cache=None)

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads", workers=1, cache=None)


class TestPoolChunksize:
    @pytest.mark.parametrize(
        ("num_items", "workers", "expected"),
        [
            (0, 4, 1),  # degenerate: no work
            (12, 8, 1),  # fewer than 4 waves/worker: stay at 1
            (30, 8, 1),  # the MC grids' scale: maximal balance
            (64, 4, 4),  # grows once work dwarfs the pool
            (300, 8, 8),  # the 10x benchmark grid hits the cap
            (100000, 2, 8),  # cap bounds intra-chunk blocking
        ],
    )
    def test_cost_model(self, num_items, workers, expected):
        assert pool_chunksize(num_items, workers) == expected


# ---------------------------------------------------------------------------
# executor identity and completion order


class TestExecutorIdentity:
    CELLS = [{"x": value, "seed": 0} for value in range(6)]

    def _reference(self):
        return sweep_map(value_cell, self.CELLS, experiment_id="ident")

    def test_process_pool_is_bit_identical_to_serial(self):
        reference = self._reference()
        with SweepOrchestrator(
            SweepConfig(workers=2, executor="process-pool")
        ) as sweep:
            pooled = sweep.map_cells(value_cell, self.CELLS, experiment_id="ident")
        assert canonical_json(pooled) == canonical_json(reference)

    def test_shared_cache_is_bit_identical_to_serial(self, tmp_path):
        reference = self._reference()
        with SweepOrchestrator(
            SweepConfig(cache_dir=tmp_path, executor="shared-cache")
        ) as sweep:
            shared = sweep.map_cells(value_cell, self.CELLS, experiment_id="ident")
        assert canonical_json(shared) == canonical_json(reference)

    def test_explicit_serial_matches_default_path(self, tmp_path):
        reference = self._reference()
        with SweepOrchestrator(
            SweepConfig(cache_dir=tmp_path, executor="serial")
        ) as sweep:
            serial = sweep.map_cells(value_cell, self.CELLS, experiment_id="ident")
        assert canonical_json(serial) == canonical_json(reference)


class TestUnorderedCompletion:
    def test_straggler_does_not_block_later_cells(self):
        # Six cells, two workers, chunksize 1: worker A sits on the
        # sleeping cell 0 while worker B drains cells 1-5; with
        # imap_unordered those five surface before the straggler.
        cells = [{"x": value} for value in range(6)]
        executor = ProcessPoolExecutor(workers=2)
        try:
            results = list(
                executor.run_missing(
                    straggler_cell, _work_items(cells, "order"), experiment_id="order"
                )
            )
        finally:
            executor.close()
        assert sorted(result.index for result in results) == list(range(6))
        assert results[0].index != 0
        assert results[-1].index == 0

    def test_single_worker_short_circuits_in_order(self):
        cells = [{"x": value} for value in range(3)]
        executor = ProcessPoolExecutor(workers=1)
        results = list(
            executor.run_missing(
                value_cell, _work_items(cells, "inline"), experiment_id="inline"
            )
        )
        executor.close()
        assert [result.index for result in results] == [0, 1, 2]


# ---------------------------------------------------------------------------
# graceful close vs abort (regression: close() used to terminate())


class RecordingPool:
    def __init__(self):
        self.calls = []

    def close(self):
        self.calls.append("close")

    def join(self):
        self.calls.append("join")

    def terminate(self):
        self.calls.append("terminate")


class RecordingExecutor:
    name = "recording"

    def __init__(self):
        self.calls = []

    def run_missing(self, func, items, *, experiment_id):
        return iter(())

    def close(self):
        self.calls.append("close")

    def abort(self):
        self.calls.append("abort")


class TestShutdown:
    def test_close_is_graceful_not_terminate(self):
        executor = ProcessPoolExecutor(workers=2)
        pool = RecordingPool()
        executor._pool = pool
        executor.close()
        assert pool.calls == ["close", "join"]
        assert "terminate" not in pool.calls

    def test_abort_terminates(self):
        executor = ProcessPoolExecutor(workers=2)
        pool = RecordingPool()
        executor._pool = pool
        executor.abort()
        assert pool.calls == ["terminate", "join"]

    def test_close_and_abort_are_idempotent(self):
        executor = ProcessPoolExecutor(workers=2)
        executor._pool = RecordingPool()
        executor.close()
        executor.close()
        executor.abort()

    def test_orchestrator_close_routes_to_executor_close(self):
        sweep = SweepOrchestrator()
        recorder = RecordingExecutor()
        sweep._executor = recorder
        sweep.close()
        assert recorder.calls == ["close"]

    def test_orchestrator_abort_routes_to_executor_abort(self):
        sweep = SweepOrchestrator()
        recorder = RecordingExecutor()
        sweep._executor = recorder
        sweep.abort()
        assert recorder.calls == ["abort"]

    def test_context_exit_uses_the_graceful_path(self):
        recorder = RecordingExecutor()
        with SweepOrchestrator() as sweep:
            sweep._executor = recorder
        assert recorder.calls == ["close"]


# ---------------------------------------------------------------------------
# the claim protocol


class TestClaims:
    KEY = "0" * 64

    def test_acquire_then_foreign_claim_blocks(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.try_claim("fig", self.KEY, owner="alice")
        assert not cache.try_claim("fig", self.KEY, owner="bob")

    def test_release_is_owner_scoped(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.try_claim("fig", self.KEY, owner="alice")
        cache.release_claim("fig", self.KEY, owner="bob")
        assert cache.claim_path("fig", self.KEY).exists()
        cache.release_claim("fig", self.KEY, owner="alice")
        assert not cache.claim_path("fig", self.KEY).exists()
        assert cache.try_claim("fig", self.KEY, owner="bob")

    def test_claiming_leaves_no_temporaries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.try_claim("fig", self.KEY, owner="alice")
        cache.try_claim("fig", self.KEY, owner="bob")  # loses, must clean up
        names = [path.name for path in (tmp_path / "fig").iterdir()]
        assert names == [f"{self.KEY}.claim"]

    def test_expired_claim_is_stolen(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.try_claim("fig", self.KEY, owner="alice", ttl_seconds=60.0)
        path = cache.claim_path("fig", self.KEY)
        # Pretend the claim is from another host (so the pid probe cannot
        # short-circuit) and backdate it past the TTL.
        path.write_text(
            json.dumps({"owner": "alice", "host": "elsewhere", "pid": 12345})
        )
        stale = path.stat().st_mtime - 120.0
        os.utime(path, (stale, stale))
        assert cache.try_claim("fig", self.KEY, owner="bob", ttl_seconds=60.0)
        entry = json.loads(path.read_text())
        assert entry["owner"] == "bob"

    def test_fresh_foreign_host_claim_blocks(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.claim_path("fig", self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"owner": "remote", "host": "elsewhere", "pid": 12345})
        )
        assert not cache.try_claim("fig", self.KEY, owner="bob", ttl_seconds=60.0)

    def test_dead_pid_claim_is_stolen_immediately(self, tmp_path):
        # A claim made on *this* host by a process that no longer exists
        # is reclaimed without waiting out the TTL -- the path a SIGKILLed
        # worker's cells come back through.
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(probe.stdout)
        cache = ResultCache(tmp_path)
        path = cache.claim_path("fig", self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"owner": "ghost", "host": platform.node(), "pid": dead_pid}
            )
        )
        assert cache.try_claim(
            "fig", self.KEY, owner="bob", ttl_seconds=10**6
        )

    def test_corrupt_claim_is_stolen(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.claim_path("fig", self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00 not json")
        assert cache.try_claim("fig", self.KEY, owner="bob", ttl_seconds=10**6)

    def test_executor_releases_claims_after_computing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [{"x": value, "seed": 0} for value in range(3)]
        executor = SharedCacheExecutor(cache)
        results = list(
            executor.run_missing(
                value_cell, _work_items(cells, "claims"), experiment_id="claims"
            )
        )
        assert executor.claimed_count == 3
        assert executor.drained_count == 0
        assert len(results) == 3
        assert not list(tmp_path.glob("*/*.claim"))

    def test_executor_drains_peer_results_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [{"x": value, "seed": 0} for value in range(3)]
        items = _work_items(cells, "drain")
        # A "peer" has already finished cell 1.
        peer_payload = json.loads(canonical_json(value_cell(cells[1])))
        cache.store("drain", items[1].key, peer_payload, params=cells[1])
        executor = SharedCacheExecutor(cache)
        results = {
            result.index: result
            for result in executor.run_missing(
                value_cell, items, experiment_id="drain"
            )
        }
        assert executor.claimed_count == 2
        assert executor.drained_count == 1
        assert results[1].provenance == "cache"
        assert results[1].payload == peer_payload


# ---------------------------------------------------------------------------
# resumability: SIGKILL mid-grid, restart, zero recomputation

RESUME_SCRIPT = """
import os
import sys
import time
from pathlib import Path

from repro.sweep import SweepConfig, SweepOrchestrator

CACHE_DIR, MARKER_DIR = sys.argv[1], sys.argv[2]
PER_CELL_S = float(sys.argv[3])


def marking_cell(params):
    time.sleep(PER_CELL_S)
    Path(MARKER_DIR, f"x{params['x']}.pid{os.getpid()}").touch()
    return {"value": params["x"] * 3}


cells = [{"x": value, "seed": 0} for value in range(8)]
config = SweepConfig(cache_dir=CACHE_DIR, executor="shared-cache")
with SweepOrchestrator(config) as sweep:
    sweep.map_cells(marking_cell, cells, experiment_id="resume")
"""


def _spawn_worker(tmp_path, script_name, script, *argv):
    script_path = tmp_path / script_name
    script_path.write_text(script)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script_path), *map(str, argv)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _marker_values(marker_dir: Path) -> set[int]:
    return {int(path.name.split(".")[0][1:]) for path in marker_dir.iterdir()}


class TestResumability:
    def test_killed_sweep_resumes_with_zero_recomputation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        cells = [{"x": value, "seed": 0} for value in range(8)]
        keys = [cell_key("resume", cell) for cell in cells]

        worker = _spawn_worker(
            tmp_path, "resume_worker.py", RESUME_SCRIPT, cache_dir, marker_dir, 0.25
        )
        try:
            deadline = time.monotonic() + 60.0
            while len(list(cache_dir.glob("resume/*.json"))) < 2:
                if time.monotonic() > deadline:
                    pytest.fail("worker never stored two cells")
                if worker.poll() is not None:
                    pytest.fail("worker exited before it could be killed")
                time.sleep(0.02)
            worker.send_signal(signal.SIGKILL)
        finally:
            worker.wait(timeout=30.0)

        cache = ResultCache(cache_dir)
        completed = {
            cell["x"]
            for cell, key in zip(cells, keys)
            if cache.load("resume", key) is not MISS
        }
        assert completed, "kill landed before any cell completed"
        assert len(completed) < len(cells), "kill landed after the whole grid"
        markers_before = set(marker_dir.iterdir())

        # Restart against the same cache, in-process this time.
        MARKER_DIR["path"] = str(marker_dir)
        config = SweepConfig(cache_dir=cache_dir, executor="shared-cache")
        with SweepOrchestrator(config) as sweep:
            resumed = sweep.map_cells(marking_cell, cells, experiment_id="resume")

        # The resumability contract: completed cells are never recomputed.
        recomputed = _marker_values(
            marker_dir
        ) - _marker_values_of(markers_before)
        assert recomputed.isdisjoint(completed)
        # And the resumed payloads are bit-identical to a pristine serial run.
        reference = [{"value": cell["x"] * 3} for cell in cells]
        assert canonical_json(resumed) == canonical_json(reference)
        # The killed worker's orphaned claim was reclaimed, not leaked.
        assert not list(cache_dir.glob("resume/*.claim"))
        # A second warm pass touches nothing at all.
        markers_after = set(marker_dir.iterdir())
        with SweepOrchestrator(config) as warm_sweep:
            warm = warm_sweep.map_cells(marking_cell, cells, experiment_id="resume")
        assert set(marker_dir.iterdir()) == markers_after
        assert warm_sweep.hits == len(cells)
        assert canonical_json(warm) == canonical_json(reference)


def _marker_values_of(paths) -> set[int]:
    return {int(path.name.split(".")[0][1:]) for path in paths}


# ---------------------------------------------------------------------------
# cooperation: two workers, one grid, each cell computed exactly once

COOPERATE_SCRIPT = """
import os
import sys
import time
from pathlib import Path

from repro.sweep import SweepConfig, SweepOrchestrator

CACHE_DIR, MARKER_DIR = sys.argv[1], sys.argv[2]
PER_CELL_S = float(sys.argv[3])


def marking_cell(params):
    time.sleep(PER_CELL_S)
    Path(MARKER_DIR, f"x{params['x']}.pid{os.getpid()}").touch()
    return {"value": params["x"] * 3}


cells = [{"x": value, "seed": 0} for value in range(10)]
config = SweepConfig(
    cache_dir=CACHE_DIR, executor="shared-cache", poll_interval_s=0.01
)
with SweepOrchestrator(config) as sweep:
    sweep.map_cells(marking_cell, cells, experiment_id="coop")
"""


class TestCooperation:
    def test_two_workers_drain_one_grid_exactly_once(self, tmp_path):
        cache_dir = tmp_path / "cache"
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        cells = [{"x": value, "seed": 0} for value in range(10)]

        workers = [
            _spawn_worker(
                tmp_path,
                f"coop_worker_{index}.py",
                COOPERATE_SCRIPT,
                cache_dir,
                marker_dir,
                0.2,
            )
            for index in range(2)
        ]
        for worker in workers:
            assert worker.wait(timeout=120.0) == 0

        # Every cell landed in the cache, and the claim protocol made the
        # split disjoint: exactly one compute marker per cell.
        markers = sorted(path.name for path in marker_dir.iterdir())
        assert len(markers) == len(cells)
        assert _marker_values(marker_dir) == {cell["x"] for cell in cells}
        pids = {name.split(".pid")[1] for name in markers}
        assert len(pids) == 2, "both workers should have won cells"

        # The drained grid reads back bit-identical to the serial reference.
        config = SweepConfig(cache_dir=cache_dir, executor="serial")
        with SweepOrchestrator(config) as sweep:
            payloads = sweep.map_cells(marking_cell, cells, experiment_id="coop")
        assert sweep.hits == len(cells)
        reference = [{"value": cell["x"] * 3} for cell in cells]
        assert canonical_json(payloads) == canonical_json(reference)

    def test_sweep_completes_despite_stale_foreign_claim(self, tmp_path):
        # A crashed remote worker left a claim behind; the TTL path steals
        # it and the sweep still drains the whole grid.
        cache = ResultCache(tmp_path)
        cells = [{"x": value, "seed": 0} for value in range(4)]
        items = _work_items(cells, "stale")
        claim = cache.claim_path("stale", items[2].key)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.write_text(
            json.dumps({"owner": "remote", "host": "elsewhere", "pid": 12345})
        )
        backdated = claim.stat().st_mtime - 10.0
        os.utime(claim, (backdated, backdated))
        executor = SharedCacheExecutor(cache, claim_ttl_s=1.0, poll_interval_s=0.01)
        results = list(
            executor.run_missing(value_cell, items, experiment_id="stale")
        )
        assert sorted(result.index for result in results) == [0, 1, 2, 3]
        assert executor.claimed_count == 4


# ---------------------------------------------------------------------------
# the progress stream

LINE_PATTERN = re.compile(
    r"^sweep [\w-]+: \d+/\d+ cells \(\d+ hit, \d+ computed\), "
    r"(?:\d+\.\d cells/s|\? cells/s), ETA (?:\d+\.\ds|\?)$"
)


class TestProgressReporter:
    def test_every_line_follows_the_documented_format(self):
        stream = io.StringIO()
        reporter = ProgressReporter("fig", 4, stream=stream, interval_s=0.0)
        for hit in (True, False, False, True):
            reporter.cell_done(hit=hit)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 4  # interval 0: one line per cell, no dup final
        for line in lines:
            assert LINE_PATTERN.match(line), line
        assert lines[-1].startswith("sweep fig: 4/4 cells (2 hit, 2 computed)")

    def test_throttle_suppresses_intermediate_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter("fig", 3, stream=stream, interval_s=3600.0)
        reporter.cell_done(hit=False)  # first line always prints
        reporter.cell_done(hit=False)  # throttled
        reporter.cell_done(hit=False)  # final cell always prints
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "3/3" in lines[-1]

    def test_finish_emits_even_with_no_cells(self):
        stream = io.StringIO()
        reporter = ProgressReporter("fig", 0, stream=stream)
        reporter.finish()
        [line] = stream.getvalue().splitlines()
        assert line == "sweep fig: 0/0 cells (0 hit, 0 computed), ? cells/s, ETA ?"

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProgressReporter("fig", -1)
        with pytest.raises(ValueError):
            ProgressReporter("fig", 1, interval_s=-0.1)

    def test_orchestrator_streams_progress(self, tmp_path):
        cells = [{"x": value, "seed": 0} for value in range(3)]
        stream = io.StringIO()
        config = SweepConfig(
            cache_dir=tmp_path,
            progress=True,
            progress_interval_s=0.0,
            progress_stream=stream,
        )
        with SweepOrchestrator(config) as sweep:
            sweep.map_cells(value_cell, cells, experiment_id="fig")
        cold_lines = stream.getvalue().splitlines()
        assert cold_lines[-1].startswith("sweep fig: 3/3 cells (0 hit, 3 computed)")

        warm_stream = io.StringIO()
        warm_config = SweepConfig(
            cache_dir=tmp_path,
            progress=True,
            progress_interval_s=0.0,
            progress_stream=warm_stream,
        )
        with SweepOrchestrator(warm_config) as sweep:
            sweep.map_cells(value_cell, cells, experiment_id="fig")
        warm_lines = warm_stream.getvalue().splitlines()
        assert warm_lines[-1].startswith("sweep fig: 3/3 cells (3 hit, 0 computed)")


# ---------------------------------------------------------------------------
# CLI validation


class TestRunnerFlags:
    def test_unknown_executor_is_a_usage_error(self, capsys):
        assert runner_main(["fig50_51_mc", "--executor", "bogus"]) == 2
        assert "unknown --executor" in capsys.readouterr().err

    def test_shared_cache_requires_cache_dir_flag(self, capsys):
        assert runner_main(["fig50_51_mc", "--executor", "shared-cache"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

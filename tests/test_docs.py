"""Docs stay in lockstep with the code.

Two enforcement points: the module docstrings of the three hot engines
carry *runnable* doctest examples (exercised here and by the CI docs job
via ``pytest --doctest-modules``), and ``docs/experiments.md`` must list
every id in the experiment registry -- adding an experiment without
documenting it fails the suite.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

import repro.core.ensemble
import repro.core.yield_analysis
import repro.simulation.batch
from repro.experiments import registry

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

#: The three hot modules whose docstrings must carry runnable examples.
DOCTEST_MODULES = [
    repro.simulation.batch,
    repro.core.ensemble,
    repro.core.yield_analysis,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_module_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0


def _catalog_ids() -> set[str]:
    """Experiment ids named in ``###`` headings of the catalog."""
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    ids: set[str] = set()
    for heading in re.findall(r"^###\s+(.*)$", text, flags=re.MULTILINE):
        ids.update(re.findall(r"`([a-z0-9_]+)`", heading))
    return ids


def test_experiment_catalog_lists_every_registered_id():
    documented = _catalog_ids()
    registered = set(registry)
    missing = registered - documented
    stale = documented - registered
    assert not missing, f"experiments missing from docs/experiments.md: {missing}"
    assert not stale, f"docs/experiments.md documents unknown ids: {stale}"


def test_architecture_doc_names_every_layer():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    for package in (
        "repro.technology",
        "repro.core",
        "repro.dpwm",
        "repro.converter",
        "repro.simulation",
        "repro.pipeline",
        "repro.sweep",
        "repro.experiments",
        "repro.analysis",
    ):
        assert package in text, f"architecture.md does not mention {package}"


def test_readme_links_to_the_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in text
    assert "docs/experiments.md" in text

"""Docs stay in lockstep with the code.

Three enforcement points: the module docstrings of the hot engines carry
*runnable* doctest examples (exercised here and by the CI docs job via
``pytest --doctest-modules``), ``docs/experiments.md`` must list every id
in the experiment registry, and every CLI flag the catalog documents must
exist in the runner's argparse spec -- and vice versa.  Adding an
experiment or a flag without documenting it (or documenting one that does
not exist) fails the suite.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

import repro.core.ensemble
import repro.core.yield_analysis
import repro.mc
import repro.pipeline
import repro.simulation.batch
from repro.experiments import registry
from repro.experiments.runner import _build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

#: The hot modules whose docstrings must carry runnable examples.
DOCTEST_MODULES = [
    repro.simulation.batch,
    repro.core.ensemble,
    repro.core.yield_analysis,
    repro.pipeline,
    repro.mc,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_module_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0


def _catalog_ids() -> set[str]:
    """Experiment ids named in ``###`` headings of the catalog."""
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    ids: set[str] = set()
    for heading in re.findall(r"^###\s+(.*)$", text, flags=re.MULTILINE):
        ids.update(re.findall(r"`([a-z0-9_]+)`", heading))
    return ids


def test_experiment_catalog_lists_every_registered_id():
    documented = _catalog_ids()
    registered = set(registry)
    missing = registered - documented
    stale = documented - registered
    assert not missing, f"experiments missing from docs/experiments.md: {missing}"
    assert not stale, f"docs/experiments.md documents unknown ids: {stale}"


def _cli_flags() -> set[str]:
    """Every ``--flag`` the runner's argparse spec actually accepts."""
    flags: set[str] = set()
    for action in _build_parser()._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                flags.add(option)
    return flags


def _documented_flags() -> set[str]:
    """Every ``--flag`` mentioned anywhere in ``docs/experiments.md``."""
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    return set(re.findall(r"(?<![\w-])--[a-z][a-z0-9-]+", text))


def test_every_documented_cli_flag_exists():
    unknown = _documented_flags() - _cli_flags()
    assert not unknown, (
        f"docs/experiments.md mentions CLI flags the runner does not "
        f"accept: {sorted(unknown)}"
    )


def test_every_cli_flag_is_documented():
    missing = _cli_flags() - _documented_flags()
    assert not missing, (
        f"runner.py flags missing from docs/experiments.md: {sorted(missing)}"
    )


def test_architecture_doc_names_every_layer():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    for package in (
        "repro.technology",
        "repro.core",
        "repro.dpwm",
        "repro.converter",
        "repro.simulation",
        "repro.pipeline",
        "repro.mc",
        "repro.sweep",
        "repro.experiments",
        "repro.analysis",
    ):
        assert package in text, f"architecture.md does not mention {package}"


def test_monte_carlo_guide_covers_the_adaptive_contract():
    text = (DOCS / "monte_carlo.md").read_text(encoding="utf-8")
    for required in (
        "--precision",
        "--max-instances",
        "Wilson",
        "Clopper-Pearson",
        "chunk",
        "seed",
    ):
        assert required in text, f"monte_carlo.md does not cover {required!r}"


def test_readme_links_to_the_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in text
    assert "docs/experiments.md" in text
    assert "docs/monte_carlo.md" in text

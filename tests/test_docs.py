"""Docs stay in lockstep with the code.

Two enforcement points: the module docstrings of the hot engines carry
*runnable* doctest examples (exercised here and by the CI docs job via
``pytest --doctest-modules``), and the ``registry-drift`` rule of
:mod:`repro.lint` must report the repository clean -- every id in the
experiment registry documented in ``docs/experiments.md`` (and vice
versa), every runner CLI flag documented (and vice versa), every layer
package named in ``docs/architecture.md``, and every docs page linked
from the README.  The drift logic itself lives in
:mod:`repro.lint.rules.drift` so the pytest gate and the ``repro-lint``
command can never disagree; the per-aspect tests below call the rule's
helpers directly so a failure still names the specific contract that
broke.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

import repro.core.ensemble
import repro.core.yield_analysis
import repro.mc
import repro.pipeline
import repro.simulation.batch
from repro.lint.rules import drift

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

#: The hot modules whose docstrings must carry runnable examples.
DOCTEST_MODULES = [
    repro.simulation.batch,
    repro.core.ensemble,
    repro.core.yield_analysis,
    repro.pipeline,
    repro.mc,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_module_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0


def test_experiment_catalog_lists_every_registered_id():
    documented = drift.catalog_ids(REPO_ROOT)
    registered = drift.registered_ids()
    missing = registered - documented
    stale = documented - registered
    assert not missing, f"experiments missing from docs/experiments.md: {missing}"
    assert not stale, f"docs/experiments.md documents unknown ids: {stale}"


def test_every_documented_cli_flag_exists():
    unknown = drift.documented_flags(REPO_ROOT) - drift.cli_flags()
    assert not unknown, (
        f"docs/experiments.md mentions CLI flags the runner does not "
        f"accept: {sorted(unknown)}"
    )


def test_every_cli_flag_is_documented():
    missing = drift.cli_flags() - drift.documented_flags(REPO_ROOT)
    assert missing == set(), (
        f"runner.py flags missing from docs/experiments.md: {sorted(missing)}"
    )


def test_architecture_doc_names_every_layer():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    layers = drift.layer_packages(REPO_ROOT)
    # The filesystem discovery must keep seeing the seven-layer stack; a
    # refactor that silently renames a package would otherwise weaken the
    # gate to vacuity.
    for expected in (
        "repro.technology",
        "repro.core",
        "repro.dpwm",
        "repro.converter",
        "repro.simulation",
        "repro.pipeline",
        "repro.mc",
        "repro.sweep",
        "repro.experiments",
        "repro.analysis",
        "repro.lint",
    ):
        assert expected in layers, f"layer discovery lost {expected}"
    for package in sorted(layers):
        assert package in text, f"architecture.md does not mention {package}"


def test_registry_drift_rule_reports_repository_clean():
    """The single gate the per-aspect tests above are facets of."""
    violations = list(drift.check(REPO_ROOT))
    assert violations == [], "\n".join(v.format() for v in violations)


def test_monte_carlo_guide_covers_the_adaptive_contract():
    text = (DOCS / "monte_carlo.md").read_text(encoding="utf-8")
    for required in (
        "--precision",
        "--max-instances",
        "Wilson",
        "Clopper-Pearson",
        "chunk",
        "seed",
    ):
        assert required in text, f"monte_carlo.md does not cover {required!r}"


def test_readme_links_to_the_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in sorted(DOCS.glob("*.md")):
        assert f"docs/{doc.name}" in text, f"README.md does not link docs/{doc.name}"

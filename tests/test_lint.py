"""The contract linter enforces its rules -- and passes on this repository.

Every file rule gets a positive fixture (code written the forbidden way
fires the rule) and a negative fixture (the sanctioned pattern stays
clean), because a linter whose rules silently stopped matching would keep
reporting success while enforcing nothing.  The suite also pins the
suppression syntax, the CLI exit codes, and -- the gate the whole PR rides
on -- that ``repro-lint`` finds zero violations in ``src/`` at HEAD.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.cli import find_project_root, main
from repro.lint.core import PROJECT_RULES, RULES, SourceFile, lint_source
from repro.lint.rules import drift

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A path whose scope classifies as package code.
SRC_PATH = "src/repro/example.py"
#: A path whose scope classifies as suite code.
TEST_PATH = "tests/test_example.py"


def lint_src(code: str) -> list:
    return lint_source(SRC_PATH, textwrap.dedent(code))


def lint_tests(code: str) -> list:
    return lint_source(TEST_PATH, textwrap.dedent(code))


def rules_fired(violations: list) -> set[str]:
    return {violation.rule for violation in violations}


# ---------------------------------------------------------------------------
# determinism


@pytest.mark.parametrize(
    "code",
    [
        "import time\nstamp = time.time()\n",
        "import time\nstamp = time.time_ns()\n",
        "import datetime\nnow = datetime.datetime.now()\n",
        "from datetime import datetime\nnow = datetime.now()\n",
        "import numpy as np\nx = np.random.normal(0.0, 1.0)\n",
        "import numpy as np\nnp.random.seed(7)\n",
        "from numpy.random import normal\nx = normal(0.0, 1.0)\n",
        "import random\nx = random.random()\n",
        "import random\nx = random.randint(0, 10)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "from numpy.random import default_rng\nrng = default_rng()\n",
        "import random\nrng = random.Random()\n",
    ],
    ids=[
        "time",
        "time_ns",
        "datetime-now",
        "datetime-now-aliased",
        "np-global-normal",
        "np-global-seed",
        "np-normal-from-import",
        "random-random",
        "random-randint",
        "unseeded-default-rng",
        "unseeded-default-rng-aliased",
        "unseeded-stdlib-random",
    ],
)
def test_determinism_flags(code):
    assert rules_fired(lint_src(code)) == {"determinism"}


@pytest.mark.parametrize(
    "code",
    [
        "import numpy as np\nrng = np.random.default_rng(42)\n",
        "from numpy.random import default_rng\nrng = default_rng((3, 4))\n",
        "import random\nrng = random.Random(7)\nx = rng.random()\n",
        # A Generator *annotation* is not a draw.
        (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.normal())\n"
        ),
        "import numpy as np\nseq = np.random.SeedSequence(5)\n",
    ],
    ids=[
        "seeded-default-rng",
        "tuple-seeded",
        "seeded-stdlib",
        "generator-annotation",
        "seed-sequence",
    ],
)
def test_determinism_accepts_seeded_patterns(code):
    assert lint_src(code) == []


def test_determinism_does_not_bind_the_test_suite():
    code = "import numpy as np\nx = np.random.normal(0.0, 1.0)\n"
    assert lint_tests(code) == []


# ---------------------------------------------------------------------------
# seeding-contract


SEEDING_VIOLATION = """
    import numpy as np

    def sample(seed, instance):
        rng = np.random.default_rng(seed)
        return rng.normal()
"""

SEEDING_OK = """
    import numpy as np

    def sample(seed, instance):
        rng = np.random.default_rng((seed, instance))
        return rng.normal()
"""

SEEDING_OK_ARITHMETIC = """
    import numpy as np

    def sample_batch(seed, first_instance, count):
        rng = np.random.default_rng((seed, "tag", first_instance + count))
        return rng.normal(size=count)
"""

SEEDING_NO_INSTANCE_PARAM = """
    import numpy as np

    def sample(seed):
        rng = np.random.default_rng(seed)
        return rng.normal()
"""


def test_seeding_contract_flags_index_free_seed():
    violations = lint_src(SEEDING_VIOLATION)
    assert rules_fired(violations) == {"seeding-contract"}
    assert "instance" in violations[0].message


def test_seeding_contract_accepts_index_keyed_seed():
    assert lint_src(SEEDING_OK) == []
    assert lint_src(SEEDING_OK_ARITHMETIC) == []


def test_seeding_contract_ignores_functions_without_instance_param():
    assert lint_src(SEEDING_NO_INSTANCE_PARAM) == []


# ---------------------------------------------------------------------------
# cache-safety


CACHE_LAMBDA = """
    from repro.sweep import sweep_map

    def run(grid):
        return sweep_map(lambda cell: cell, grid.cells())
"""

CACHE_NESTED = """
    from repro.sweep import sweep_map

    def run(grid):
        def cell_function(params):
            return params
        return sweep_map(cell_function, grid.cells())
"""

CACHE_NON_SCALAR_AXIS = """
    from repro.sweep import ParameterGrid

    GRID = ParameterGrid(corner=[("fast", 1.1)], frequency_mhz=[50.0, 100.0])
"""

CACHE_NON_SCALAR_EXTRA = """
    from repro.sweep import ParameterGrid

    GRID = ParameterGrid(frequency_mhz=[50.0, 100.0])
    CELLS = GRID.cells(options={"deep": True})
"""

CACHE_RUN_MISSING_LAMBDA = """
    def drain(executor, items):
        return list(executor.run_missing(lambda cell: cell, items))
"""

CACHE_CLAIM_OPEN_WRITE = """
    def publish(cache_dir, key, owner):
        with open(cache_dir / (key + ".claim"), "w") as handle:
            handle.write(owner)
"""

CACHE_CLAIM_WRITE_TEXT = """
    def publish(claim_path, owner):
        claim_path.write_text(owner)
"""

CACHE_OK = """
    from repro.sweep import ParameterGrid, sweep_map

    GRID = ParameterGrid(corner=["fast", "slow"], frequency_mhz=[50.0, 100.0])

    def cell_function(params):
        return {"value": params["frequency_mhz"]}

    def run(orchestrator):
        return sweep_map(cell_function, GRID.cells(seed=0), orchestrator)
"""

CACHE_CLAIM_OK = """
    def _claim_write_atomic(claim_path, owner):
        claim_path.write_text(owner)

    def inspect(claim_path):
        return claim_path.read_text()
"""


@pytest.mark.parametrize(
    "code",
    [
        CACHE_LAMBDA,
        CACHE_NESTED,
        CACHE_NON_SCALAR_AXIS,
        CACHE_NON_SCALAR_EXTRA,
        CACHE_RUN_MISSING_LAMBDA,
        CACHE_CLAIM_OPEN_WRITE,
        CACHE_CLAIM_WRITE_TEXT,
    ],
    ids=[
        "lambda",
        "nested-function",
        "non-scalar-axis",
        "non-scalar-extra",
        "run-missing-lambda",
        "claim-open-write",
        "claim-write-text",
    ],
)
def test_cache_safety_flags(code):
    assert rules_fired(lint_src(code)) == {"cache-safety"}


def test_cache_safety_accepts_module_level_scalar_cells():
    assert lint_src(CACHE_OK) == []


def test_cache_safety_accepts_claim_writes_in_atomic_helper():
    assert lint_src(CACHE_CLAIM_OK) == []


# ---------------------------------------------------------------------------
# numerical / structural hygiene


def test_float_equality_flags_float_literal_compare():
    violations = lint_src("def f(x):\n    return x == 0.5\n")
    assert rules_fired(violations) == {"float-equality"}


@pytest.mark.parametrize(
    "code",
    [
        "def f(x):\n    return x <= 0.0\n",
        "import math\ndef f(x):\n    return math.isclose(x, 0.5)\n",
        "def f(x):\n    return x == 5\n",
    ],
    ids=["inequality", "isclose", "int-literal"],
)
def test_float_equality_accepts(code):
    assert lint_src(code) == []


def test_mutable_default_flags_literal_and_factory():
    assert rules_fired(lint_src("def f(items=[]):\n    return items\n")) == {
        "mutable-default"
    }
    assert rules_fired(lint_src("def f(cache=dict()):\n    return cache\n")) == {
        "mutable-default"
    }


def test_mutable_default_accepts_none_guard():
    code = "def f(items=None):\n    return [] if items is None else items\n"
    assert lint_src(code) == []


def test_bare_except_flags_and_binds_both_scopes():
    code = "try:\n    pass\nexcept:\n    pass\n"
    assert rules_fired(lint_src(code)) == {"bare-except"}
    assert rules_fired(lint_tests(code)) == {"bare-except"}


def test_named_except_is_clean():
    assert lint_src("try:\n    pass\nexcept ValueError:\n    pass\n") == []


def test_assert_validation_flags_src_but_not_tests():
    code = "def f(x):\n    assert x > 0\n    return x\n"
    assert rules_fired(lint_src(code)) == {"assert-validation"}
    assert lint_tests(code) == []


# ---------------------------------------------------------------------------
# kernel-purity

#: A path the purity rule binds (a module inside the kernel package).
KERNEL_PATH = "src/repro/kernels/example.py"


def lint_kernel(code: str) -> list:
    return lint_source(KERNEL_PATH, textwrap.dedent(code))


@pytest.mark.parametrize(
    "code",
    [
        "import random\n",
        "import secrets\n",
        "import numpy.random\n",
        "from numpy.random import default_rng\n",
        "from numpy import random\n",
        "from random import randint\n",
    ],
)
def test_kernel_purity_flags_rng_imports(code):
    assert "kernel-purity" in rules_fired(lint_kernel(code))


def test_kernel_purity_flags_module_state_read():
    code = """
    import numpy as np

    _CACHE = {}

    def kernel(values):
        _CACHE[values.shape] = values
        return values * np.asarray(_CACHE[values.shape])
    """
    assert "kernel-purity" in rules_fired(lint_kernel(code))


def test_kernel_purity_flags_closure_capture():
    code = """
    def kernel(values, scale):
        def helper(row):
            return row * scale
        return helper(values)
    """
    assert "kernel-purity" in rules_fired(lint_kernel(code))


def test_kernel_purity_accepts_pure_kernels():
    code = """
    import numpy as np

    EPSILON = 1e-12

    def kernel(values, offsets):
        clipped = np.clip(values + offsets, 0.0, 1.0)
        return clipped / (clipped.sum() + EPSILON)
    """
    assert lint_kernel(code) == []


def test_kernel_purity_allows_argument_shadowing_a_global():
    code = """
    TABLE = [1, 2, 3]

    def kernel(TABLE):
        return TABLE
    """
    # Reading the *argument* is fine; only the module binding is state.
    assert lint_kernel(code) == []


def test_kernel_purity_exempts_registry_and_non_kernel_files():
    stateful = "_CACHE = {}\n\ndef f():\n    return _CACHE\n"
    assert lint_source("src/repro/kernels/backend.py", stateful) == []
    assert lint_source("src/repro/kernels/__init__.py", stateful) == []
    assert lint_src(stateful) == []


# ---------------------------------------------------------------------------
# suppression


def test_line_suppression_names_the_rule():
    code = "def f(x):\n    return x == 0.5  # repro-lint: disable=float-equality\n"
    assert lint_src(code) == []


def test_line_suppression_for_another_rule_does_not_silence():
    code = "def f(x):\n    return x == 0.5  # repro-lint: disable=bare-except\n"
    assert rules_fired(lint_src(code)) == {"float-equality"}


def test_file_suppression():
    code = (
        "# repro-lint: disable-file=determinism\n"
        "import random\n"
        "x = random.random()\n"
    )
    assert lint_src(code) == []


def test_disable_all_on_a_line():
    code = "def f(x):\n    return x == 0.5  # repro-lint: disable=all\n"
    assert lint_src(code) == []


def test_scope_classification():
    assert SourceFile(SRC_PATH, "").scope == "src"
    assert SourceFile(TEST_PATH, "").scope == "tests"
    assert SourceFile("benchmarks/test_bench.py", "").scope == "tests"
    assert SourceFile("src/repro/conftest.py", "").scope == "tests"


def test_unparsable_file_reports_parse_error():
    violations = lint_source(SRC_PATH, "def broken(:\n")
    assert [v.rule for v in violations] == ["parse-error"]


# ---------------------------------------------------------------------------
# registry-drift (project rule)


def test_drift_missing_catalog_is_one_actionable_violation(tmp_path):
    (tmp_path / "docs").mkdir()
    violations = list(drift.check(tmp_path))
    assert [v.rule for v in violations] == ["registry-drift"]
    assert "docs/experiments.md" in violations[0].message


def test_drift_flags_unknown_documented_id_and_stale_flag(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    # Document every real id/flag (so only the planted drift fires), plus a
    # bogus experiment and a flag the runner does not accept.
    headings = "\n".join(
        f"### `{experiment_id}`" for experiment_id in sorted(drift.registered_ids())
    )
    flags = " ".join(sorted(drift.cli_flags()))
    (docs / "experiments.md").write_text(
        f"{headings}\n### `bogus_experiment`\n\n{flags} --no-such-flag\n",
        encoding="utf-8",
    )
    (docs / "architecture.md").write_text("", encoding="utf-8")
    (tmp_path / "README.md").write_text(
        "[a](docs/architecture.md) [b](docs/experiments.md)", encoding="utf-8"
    )
    (tmp_path / "src" / "repro").mkdir(parents=True)

    messages = [v.message for v in drift.check(tmp_path)]
    assert any("bogus_experiment" in message for message in messages)
    assert any("--no-such-flag" in message for message in messages)


def test_drift_flags_unlinked_doc_and_missing_layer(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    headings = "\n".join(
        f"### `{experiment_id}`" for experiment_id in sorted(drift.registered_ids())
    )
    flags = " ".join(sorted(drift.cli_flags()))
    (docs / "experiments.md").write_text(f"{headings}\n\n{flags}\n", encoding="utf-8")
    (docs / "architecture.md").write_text("no layers here", encoding="utf-8")
    (docs / "orphan.md").write_text("never linked", encoding="utf-8")
    (tmp_path / "README.md").write_text(
        "[a](docs/architecture.md) [b](docs/experiments.md)", encoding="utf-8"
    )
    package = tmp_path / "src" / "repro"
    (package / "mc_like").mkdir(parents=True)
    (package / "mc_like" / "__init__.py").write_text("", encoding="utf-8")

    messages = [v.message for v in drift.check(tmp_path)]
    assert any("repro.mc_like" in message for message in messages)
    assert any("docs/orphan.md" in message for message in messages)


def test_drift_reports_this_repository_clean():
    assert list(drift.check(REPO_ROOT)) == []


# ---------------------------------------------------------------------------
# CLI


def test_cli_list_rules_names_every_registered_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (*RULES, *PROJECT_RULES):
        assert name in out


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("import numpy as np\nrng = np.random.default_rng(1)\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().err


def test_cli_violations_exit_one_and_print_locations(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert main([str(dirty)]) == 1
    captured = capsys.readouterr()
    assert f"{dirty}:2:" in captured.out
    assert "determinism" in captured.out
    assert "1 violation(s)" in captured.err


def test_cli_unknown_rule_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "module.py"
    target.write_text("x = 1\n")
    assert main(["--select", "no-such-rule", str(target)]) == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_cli_select_restricts_rules(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\ny = x == 0.5\n")
    assert main(["--select", "float-equality", str(dirty)]) == 1
    assert main(["--select", "bare-except", str(dirty)]) == 0


def test_cli_ignore_drops_rules(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert main(["--ignore", "determinism", str(dirty)]) == 0


def test_find_project_root_walks_up_to_pyproject_and_docs():
    assert find_project_root(REPO_ROOT / "src" / "repro" / "mc.py") == REPO_ROOT
    assert find_project_root("/") is None


def test_repro_lint_src_is_clean_at_head():
    """The PR's headline gate: the package lints clean, project rules and all."""
    assert main([str(REPO_ROOT / "src")]) == 0


def test_repro_lint_src_and_tests_are_clean_at_head():
    assert main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]) == 0

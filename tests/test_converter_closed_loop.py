"""Tests for the digitally controlled buck converter (closed loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import (
    DigitallyControlledBuck,
    IdealDPWM,
    RegulationTrace,
)
from repro.converter.load import (
    ConstantLoad,
    LineTransient,
    ReferenceStep,
    SteppedLoad,
)
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.technology.corners import OperatingConditions


@pytest.fixture(scope="module")
def params():
    return BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)


class TestIdealDPWM:
    def test_round_trip(self):
        dpwm = IdealDPWM(bits=8)
        assert dpwm.max_word == 255
        assert dpwm.duty_word_for(0.5) == 128
        assert dpwm.duty_fraction(128) == pytest.approx(0.5)

    def test_clamping(self):
        dpwm = IdealDPWM(bits=4)
        assert dpwm.duty_word_for(2.0) == dpwm.max_word
        assert dpwm.duty_word_for(-1.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            IdealDPWM(bits=0)
        with pytest.raises(ValueError):
            IdealDPWM(bits=4).duty_fraction(99)


class TestClosedLoopWithIdealDPWM:
    def test_regulates_to_reference(self, params):
        loop = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=0.9)
        trace = loop.run(500)
        assert trace.steady_state_voltage_v() == pytest.approx(0.9, abs=0.02)

    def test_different_references(self, params):
        for reference in (0.6, 1.2):
            loop = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=reference)
            trace = loop.run(500)
            assert trace.steady_state_voltage_v() == pytest.approx(reference, abs=0.03)

    def test_voltage_resolution_follows_dpwm_bits(self, params):
        coarse = DigitallyControlledBuck(params, IdealDPWM(bits=4), reference_v=0.9)
        fine = DigitallyControlledBuck(params, IdealDPWM(bits=10), reference_v=0.9)
        # Paper eq. 12: resolution = Vg / 2**n.
        assert coarse.output_voltage_resolution_v() == pytest.approx(1.8 / 16)
        assert fine.output_voltage_resolution_v() == pytest.approx(1.8 / 1024)

    def test_coarse_dpwm_limit_cycles_more(self, params):
        # A reference that is *not* exactly representable forces the loop to
        # dither between adjacent duty words; the dither amplitude (and hence
        # the output ripple) shrinks with DPWM resolution -- the reason the
        # paper pushes for high-resolution DPWM (eq. 12).
        coarse = DigitallyControlledBuck(params, IdealDPWM(bits=4), reference_v=0.95)
        fine = DigitallyControlledBuck(params, IdealDPWM(bits=9), reference_v=0.95)
        coarse_ripple = coarse.run(600).steady_state_ripple_v()
        fine_ripple = fine.run(600).steady_state_ripple_v()
        assert fine_ripple < coarse_ripple

    def test_load_step_recovery(self, params):
        load = SteppedLoad(light_ohm=2.0, heavy_ohm=1.0, step_up_period=200)
        loop = DigitallyControlledBuck(
            params, IdealDPWM(bits=8), reference_v=0.9, load=load
        )
        trace = loop.run(900)
        voltages = np.asarray(trace.output_voltages_v)
        # The output dips on the load step but recovers close to the reference.
        assert voltages[200:260].min() < 0.9
        assert voltages[-50:].mean() == pytest.approx(0.9, abs=0.03)

    def test_trace_arrays_consistent(self, params):
        loop = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=0.9)
        trace = loop.run(50)
        arrays = trace.as_arrays()
        assert len(trace) == 50
        assert arrays["vout_v"].shape == (50,)
        assert arrays["duty"].min() >= 0.0
        assert arrays["duty"].max() <= 1.0
        assert np.all(np.diff(arrays["time_s"]) > 0)

    def test_validation(self, params):
        with pytest.raises(ValueError):
            DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=2.5)
        loop = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=0.9)
        with pytest.raises(ValueError):
            loop.run(0)

    def test_empty_trace_statistics_raise(self):
        # Regression: mean() of an empty trace used to yield NaN plus a
        # numpy warning instead of a clear error.
        trace = RegulationTrace()
        with pytest.raises(ValueError, match="empty trace"):
            trace.steady_state_voltage_v()
        with pytest.raises(ValueError, match="empty trace"):
            trace.steady_state_ripple_v()

    def test_invalid_tail_fraction_rejected(self, params):
        trace = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=0.9).run(10)
        with pytest.raises(ValueError):
            trace.steady_state_voltage_v(tail_fraction=0.0)
        with pytest.raises(ValueError):
            trace.steady_state_ripple_v(tail_fraction=1.5)

    def test_euler_stepper_selectable_and_close(self, params):
        exact = DigitallyControlledBuck(params, IdealDPWM(bits=8), reference_v=0.9)
        euler = DigitallyControlledBuck(
            params, IdealDPWM(bits=8), reference_v=0.9, stepper="euler"
        )
        assert exact.power_stage.method == "exact"
        assert euler.power_stage.method == "euler"
        v_exact = exact.run(400).steady_state_voltage_v()
        v_euler = euler.run(400).steady_state_voltage_v()
        assert v_exact == pytest.approx(v_euler, abs=1e-3)

    def test_start_at_reference_follows_profile_initial_value(self, params):
        profile = ReferenceStep(initial_v=0.6, final_v=0.9, step_period=300)
        loop = DigitallyControlledBuck(
            params, IdealDPWM(bits=8), reference_v=0.9, reference_profile=profile
        )
        assert loop.power_stage.state.output_voltage_v == pytest.approx(0.6)
        trace = loop.run(250)
        voltages = np.asarray(trace.output_voltages_v)
        # No artificial transient before the step: the loop holds 0.6 V.
        assert voltages[200:250].mean() == pytest.approx(0.6, abs=0.02)

    def test_reference_profile_above_input_rejected(self, params):
        profile = ReferenceStep(initial_v=0.9, final_v=2.5, step_period=300)
        with pytest.raises(ValueError, match="reference profile"):
            DigitallyControlledBuck(
                params, IdealDPWM(bits=8), reference_v=0.9, reference_profile=profile
            )

    def test_reference_step_scenario(self, params):
        profile = ReferenceStep(initial_v=0.9, final_v=1.1, step_period=300)
        loop = DigitallyControlledBuck(
            params, IdealDPWM(bits=8), reference_v=0.9, reference_profile=profile
        )
        trace = loop.run(800)
        voltages = np.asarray(trace.output_voltages_v)
        assert voltages[250:300].mean() == pytest.approx(0.9, abs=0.03)
        assert voltages[-50:].mean() == pytest.approx(1.1, abs=0.03)

    def test_line_transient_scenario(self, params):
        profile = LineTransient(
            nominal_v=1.8, disturbed_v=1.4, start_period=300, end_period=600
        )
        loop = DigitallyControlledBuck(
            params, IdealDPWM(bits=8), reference_v=0.9, source_profile=profile
        )
        trace = loop.run(900)
        voltages = np.asarray(trace.output_voltages_v)
        duties = np.asarray(trace.duty_fractions)
        # The loop re-regulates through the droop by raising the duty.
        assert voltages[550:600].mean() == pytest.approx(0.9, abs=0.03)
        assert duties[550:600].mean() > duties[250:300].mean()
        assert voltages[-50:].mean() == pytest.approx(0.9, abs=0.03)

    def test_cold_start_reaches_reference(self, params):
        loop = DigitallyControlledBuck(
            params,
            IdealDPWM(bits=8),
            reference_v=0.9,
            load=ConstantLoad(1.0),
            start_at_reference=False,
        )
        trace = loop.run(1500)
        assert trace.output_voltages_v[0] < 0.5
        assert trace.steady_state_voltage_v(tail_fraction=0.1) == pytest.approx(
            0.9, abs=0.05
        )


class TestClosedLoopWithCalibratedDPWM:
    @pytest.mark.parametrize("corner_name", ["fast", "typical", "slow"])
    def test_proposed_line_regulates_at_every_corner(
        self, params, proposed_design, library, corner_name
    ):
        conditions = {
            "fast": OperatingConditions.fast(),
            "typical": OperatingConditions.typical(),
            "slow": OperatingConditions.slow(),
        }[corner_name]
        line = proposed_design.build_line(library=library)
        dpwm = CalibratedDelayLineDPWM(line, conditions)
        loop = DigitallyControlledBuck(params, dpwm, reference_v=0.9)
        trace = loop.run(400)
        assert trace.steady_state_voltage_v() == pytest.approx(0.9, abs=0.03)

    def test_conventional_line_regulates(self, params, conventional_design, library):
        line = conventional_design.build_line(library=library)
        dpwm = CalibratedDelayLineDPWM(line, OperatingConditions.typical())
        loop = DigitallyControlledBuck(params, dpwm, reference_v=0.9)
        trace = loop.run(400)
        assert trace.steady_state_voltage_v() == pytest.approx(0.9, abs=0.04)

"""Tests for the behavioural logic primitives."""

from __future__ import annotations

import random

import pytest

from repro.simulation.clocks import ClockGenerator, PulseGenerator
from repro.simulation.primitives import (
    Buffer,
    Comparator,
    Counter,
    DFlipFlop,
    Inverter,
    Mux2,
    MuxN,
    SetResetFlop,
    TwoFlopSynchronizer,
)
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator


class TestBufferAndInverter:
    def test_buffer_delays_both_edges(self):
        sim = Simulator()
        a = Signal(sim, "a")
        y = Signal(sim, "y")
        Buffer(sim, a, y, delay_ps=40.0)
        sim.schedule(0.0, lambda: a.set(1))
        sim.schedule(100.0, lambda: a.set(0))
        sim.run()
        assert y.trace.edges(rising=True) == [40.0]
        assert y.trace.edges(rising=False) == [140.0]

    def test_buffer_chain_accumulates_delay(self):
        sim = Simulator()
        stages = [Signal(sim, f"n{i}") for i in range(5)]
        for a, b in zip(stages, stages[1:]):
            Buffer(sim, a, b, delay_ps=10.0)
        sim.schedule(0.0, lambda: stages[0].set(1))
        sim.run()
        assert stages[-1].trace.edges(rising=True) == [40.0]

    def test_inverter_inverts(self):
        sim = Simulator()
        a = Signal(sim, "a")
        y = Signal(sim, "y")
        Inverter(sim, a, y, delay_ps=5.0)
        assert y.value == 1  # initial input is 0
        sim.schedule(10.0, lambda: a.set(1))
        sim.run()
        assert y.value == 0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        a, y = Signal(sim, "a"), Signal(sim, "y")
        with pytest.raises(ValueError):
            Buffer(sim, a, y, delay_ps=-1.0)
        with pytest.raises(ValueError):
            Inverter(sim, a, y, delay_ps=-1.0)


class TestMuxes:
    def test_mux2_follows_select(self):
        sim = Simulator()
        a = Signal(sim, "a", initial=0)
        b = Signal(sim, "b", initial=1)
        sel = Signal(sim, "sel")
        y = Signal(sim, "y")
        Mux2(sim, a, b, sel, y)
        assert y.value == 0
        sel.set(1)
        assert y.value == 1

    def test_muxn_only_selected_input_propagates(self):
        sim = Simulator()
        inputs = [Signal(sim, f"i{k}") for k in range(4)]
        sel = Signal(sim, "sel", width=2, initial=2)
        y = Signal(sim, "y")
        MuxN(sim, inputs, sel, y)
        inputs[0].set(1)
        assert y.value == 0
        inputs[2].set(1)
        assert y.value == 1

    def test_muxn_select_change_updates_output(self):
        sim = Simulator()
        inputs = [Signal(sim, f"i{k}", initial=k % 2) for k in range(4)]
        sel = Signal(sim, "sel", width=2, initial=0)
        y = Signal(sim, "y")
        MuxN(sim, inputs, sel, y)
        assert y.value == 0
        sel.set(1)
        assert y.value == 1

    def test_muxn_requires_inputs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MuxN(sim, [], Signal(sim, "sel"), Signal(sim, "y"))

    def test_muxn_select_out_of_range_clamps(self):
        sim = Simulator()
        inputs = [Signal(sim, "i0", initial=0), Signal(sim, "i1", initial=1)]
        sel = Signal(sim, "sel", width=4, initial=9)
        y = Signal(sim, "y")
        MuxN(sim, inputs, sel, y)
        assert y.value == 1  # clamped to the last input


class TestDFlipFlop:
    def test_samples_on_rising_edge_only(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        d = Signal(sim, "d")
        q = Signal(sim, "q")
        DFlipFlop(sim, clk, d, q)
        d.set(1)
        clk.set(1)
        assert q.value == 1
        d.set(0)
        clk.set(0)  # falling edge: no sample
        assert q.value == 1
        clk.set(1)
        assert q.value == 0

    def test_clk_to_q_delay(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        d = Signal(sim, "d", initial=1)
        q = Signal(sim, "q")
        DFlipFlop(sim, clk, d, q, clk_to_q_ps=30.0)
        sim.schedule(100.0, lambda: clk.set(1))
        sim.run()
        assert q.trace.edges(rising=True) == [130.0]

    def test_setup_violation_detected(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        d = Signal(sim, "d")
        q = Signal(sim, "q")
        flop = DFlipFlop(sim, clk, d, q, setup_ps=50.0)
        sim.schedule(90.0, lambda: d.set(1))
        sim.schedule(100.0, lambda: clk.set(1))
        sim.run()
        assert flop.setup_violations == 1

    def test_no_violation_when_data_is_stable(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        d = Signal(sim, "d")
        q = Signal(sim, "q")
        flop = DFlipFlop(sim, clk, d, q, setup_ps=50.0)
        sim.schedule(10.0, lambda: d.set(1))
        sim.schedule(100.0, lambda: clk.set(1))
        sim.run()
        assert flop.setup_violations == 0

    def test_metastability_resolution_uses_rng(self):
        rng = random.Random(1234)
        sim = Simulator()
        clk = Signal(sim, "clk")
        d = Signal(sim, "d")
        q = Signal(sim, "q")
        flop = DFlipFlop(
            sim, clk, d, q, setup_ps=50.0, metastability_rng=rng
        )
        sim.schedule(95.0, lambda: d.set(1))
        sim.schedule(100.0, lambda: clk.set(1))
        sim.run()
        assert flop.setup_violations == 1
        assert q.value in (0, 1)


class TestSetResetFlop:
    def test_set_then_reset(self):
        sim = Simulator()
        s = Signal(sim, "s")
        r = Signal(sim, "r")
        q = Signal(sim, "q")
        SetResetFlop(sim, s, r, q)
        sim.schedule(10.0, lambda: s.set(1))
        sim.schedule(60.0, lambda: r.set(1))
        sim.run()
        assert q.trace.edges(rising=True) == [10.0]
        assert q.trace.edges(rising=False) == [60.0]

    def test_set_works_while_reset_level_high(self):
        # The delay-line DPWM's reset tap is a delayed clock that may still
        # be high when the next period starts; the output must still set.
        sim = Simulator()
        s = Signal(sim, "s")
        r = Signal(sim, "r", initial=1)
        q = Signal(sim, "q")
        SetResetFlop(sim, s, r, q)
        sim.schedule(10.0, lambda: s.set(1))
        sim.run()
        assert q.value == 1


class TestCounterAndComparator:
    def test_counter_wraps_at_modulus(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        out = Signal(sim, "cnt", width=2)
        Counter(sim, clk, out, width=2)
        values = []
        for _ in range(5):
            clk.set(1)
            values.append(out.value)
            clk.set(0)
        assert values == [1, 2, 3, 0, 1]

    def test_counter_initial_value(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        out = Signal(sim, "cnt", width=3)
        Counter(sim, clk, out, width=3, initial=7)
        assert out.value == 7
        clk.set(1)
        assert out.value == 0

    def test_counter_rejects_bad_width(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Counter(sim, Signal(sim, "clk"), Signal(sim, "o"), width=0)

    def test_comparator_tracks_equality(self):
        sim = Simulator()
        a = Signal(sim, "a", width=4, initial=3)
        b = Signal(sim, "b", width=4, initial=3)
        y = Signal(sim, "y")
        Comparator(sim, a, b, y)
        assert y.value == 1
        a.set(5)
        assert y.value == 0
        b.set(5)
        assert y.value == 1


class TestSynchronizerAndClocks:
    def test_two_flop_synchronizer_delays_by_two_edges(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        ClockGenerator(sim, clk, period_ps=100.0)
        async_in = Signal(sim, "async")
        synced = Signal(sim, "synced")
        TwoFlopSynchronizer(sim, clk, async_in, synced, setup_ps=0.0)
        sim.schedule(130.0, lambda: async_in.set(1))
        sim.run_until(450.0)
        # Sampled by the first flop at 200 ps, reaches the output at 300 ps.
        assert synced.trace.edges(rising=True) == [300.0]

    def test_clock_generator_period_and_duty(self):
        sim = Simulator()
        clk = Signal(sim, "clk")
        generator = ClockGenerator(sim, clk, period_ps=200.0, duty=0.25)
        sim.run_until(999.0)
        assert clk.trace.edges(rising=True) == [0.0, 200.0, 400.0, 600.0, 800.0]
        assert clk.trace.duty_cycle(200.0, start_ps=200.0) == pytest.approx(0.25)
        assert generator.frequency_mhz == pytest.approx(1e6 / 200.0)

    def test_clock_generator_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ClockGenerator(sim, Signal(sim, "c"), period_ps=0.0)
        with pytest.raises(ValueError):
            ClockGenerator(sim, Signal(sim, "c"), period_ps=10.0, duty=1.0)

    def test_pulse_generator(self):
        sim = Simulator()
        pulse = Signal(sim, "p")
        PulseGenerator(sim, pulse, start_ps=50.0, width_ps=25.0)
        sim.run()
        assert pulse.trace.edges(rising=True) == [50.0]
        assert pulse.trace.edges(rising=False) == [75.0]

    def test_pulse_generator_rejects_zero_width(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PulseGenerator(sim, Signal(sim, "p"), start_ps=0.0, width_ps=0.0)

"""Exact state-space stepper vs the seed Euler integrator.

The exact stepper evaluates the interval update in closed form (matrix
exponential of the 2x2 system matrix), so on any configuration where the
explicit Euler integration is well resolved the two must agree tightly --
and in the underdamped regime the *Euler* trajectory is the one that
drifts, bounded-above by refining its step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter.buck import (
    BuckParameters,
    BuckPowerStage,
    exact_interval_coefficients,
)

duties = st.floats(min_value=0.1, max_value=0.9)
loads = st.floats(min_value=0.5, max_value=10.0)
resistances = st.floats(min_value=0.0, max_value=0.1)


class TestExactIntervalCoefficients:
    def test_zero_duration_is_identity(self):
        ad11, ad12, ad21, ad22, m11, m21 = exact_interval_coefficients(
            a=-1e5, b=-1e7, c=1e7, d=-1e7, duration=0.0
        )
        assert (ad11, ad12, ad21, ad22) == pytest.approx((1.0, 0.0, 0.0, 1.0))
        assert (m11, m21) == pytest.approx((0.0, 0.0))

    def test_matches_scipy_expm(self):
        scipy_linalg = pytest.importorskip("scipy.linalg")
        rng = np.random.default_rng(5)
        for _ in range(50):
            inductance = rng.uniform(20e-9, 500e-9)
            capacitance = rng.uniform(20e-9, 500e-9)
            rload = rng.uniform(0.3, 20.0)
            series = rng.uniform(0.0, 0.2)
            duration = rng.uniform(0.05e-9, 20e-9)
            matrix = np.array(
                [
                    [-series / inductance, -1.0 / inductance],
                    [1.0 / capacitance, -1.0 / (rload * capacitance)],
                ]
            )
            expected = scipy_linalg.expm(matrix * duration)
            ad11, ad12, ad21, ad22, m11, m21 = exact_interval_coefficients(
                matrix[0, 0], matrix[0, 1], matrix[1, 0], matrix[1, 1], duration
            )
            computed = np.array([[ad11, ad12], [ad21, ad22]])
            np.testing.assert_allclose(computed, expected, rtol=1e-9, atol=1e-12)
            expected_m = np.linalg.solve(matrix, expected - np.eye(2))
            np.testing.assert_allclose(
                [m11, m21], expected_m[:, 0], rtol=1e-7, atol=1e-15
            )

    def test_stiff_overdamped_interval_is_finite(self):
        # Regression: exp(mu t) underflowed while cosh(q t) overflowed for
        # stiff overdamped intervals, yielding NaN instead of the finite
        # true exponential.  Here A is diagonal, so Ad = diag(e^a, e^d).
        ad11, ad12, ad21, ad22, m11, m21 = exact_interval_coefficients(
            a=-0.5, b=0.0, c=0.0, d=-1999.5, duration=1.0
        )
        assert ad11 == pytest.approx(np.exp(-0.5), rel=1e-12)
        assert ad22 == pytest.approx(np.exp(-1999.5), abs=1e-300)
        assert ad12 == 0.0 and ad21 == 0.0
        assert np.isfinite(m11) and np.isfinite(m21)

    def test_critically_damped_limit_is_finite(self):
        # delta**2 + b*c == 0 exercises the degenerate branch.
        ad11, ad12, ad21, ad22, m11, m21 = exact_interval_coefficients(
            a=-2.0, b=1.0, c=-1.0, d=-4.0, duration=0.5
        )
        for value in (ad11, ad12, ad21, ad22, m11, m21):
            assert np.isfinite(value)
        # Against the series expansion computed with scipy if available.
        scipy_linalg = pytest.importorskip("scipy.linalg")
        matrix = np.array([[-2.0, 1.0], [-1.0, -4.0]])
        expected = scipy_linalg.expm(matrix * 0.5)
        np.testing.assert_allclose(
            np.array([[ad11, ad12], [ad21, ad22]]), expected, rtol=1e-9
        )


class TestExactVersusEuler:
    @settings(max_examples=30, deadline=None)
    @given(duty=duties, load=loads, series_resistance=resistances)
    def test_steady_state_agrees_across_parameter_space(
        self, duty, load, series_resistance
    ):
        params = BuckParameters(
            switch_resistance_ohm=series_resistance / 2,
            inductor_resistance_ohm=series_resistance / 2,
        )
        exact = BuckPowerStage(params, method="exact")
        euler = BuckPowerStage(params, method="euler")
        exact_outputs = exact.run_periods(duty, load, periods=600)
        euler_outputs = euler.run_periods(duty, load, periods=600)
        # Steady state (tail mean) within 1 mV across duty / load / parasitics.
        assert abs(exact_outputs[-100:].mean() - euler_outputs[-100:].mean()) < 1e-3

    @settings(max_examples=20, deadline=None)
    @given(duty=duties, load=loads)
    def test_transient_trajectory_tracks_euler(self, duty, load):
        params = BuckParameters()
        exact = BuckPowerStage(params, method="exact")
        euler = BuckPowerStage(params, method="euler")
        exact_outputs = exact.run_periods(duty, load, periods=200)
        euler_outputs = euler.run_periods(duty, load, periods=200)
        # The transient deviation is dominated by Euler's first-order error
        # (it reaches ~5 mV at high duty into a light load), so the bound
        # only asserts the trajectories stay in the same regime.
        assert np.max(np.abs(exact_outputs - euler_outputs)) < 2e-2

    def test_underdamped_regime_euler_converges_to_exact(self):
        # With zero damping the LC rings forever; Euler at the default step
        # drifts, and refining the step moves Euler *toward* the exact
        # trajectory -- evidence the exact stepper, not Euler, is the truth.
        params = BuckParameters(switch_resistance_ohm=0.0, inductor_resistance_ohm=0.0)
        exact = BuckPowerStage(params, method="exact")
        coarse = BuckPowerStage(params, substeps_per_interval=64, method="euler")
        fine = BuckPowerStage(params, substeps_per_interval=1024, method="euler")
        exact_outputs = exact.run_periods(0.5, 5.0, periods=300)
        coarse_outputs = coarse.run_periods(0.5, 5.0, periods=300)
        fine_outputs = fine.run_periods(0.5, 5.0, periods=300)
        coarse_error = np.max(np.abs(coarse_outputs - exact_outputs))
        fine_error = np.max(np.abs(fine_outputs - exact_outputs))
        assert fine_error < coarse_error / 4

    def test_exact_is_step_count_invariant(self):
        # The exact update must not depend on substeps_per_interval at all.
        params = BuckParameters()
        one = BuckPowerStage(params, substeps_per_interval=4, method="exact")
        other = BuckPowerStage(params, substeps_per_interval=512, method="exact")
        np.testing.assert_array_equal(
            one.run_periods(0.4, 1.0, 100), other.run_periods(0.4, 1.0, 100)
        )

    def test_settle_agrees_with_analytic_dc_value(self):
        # DC operating point: Vout = D*Vg * R / (R + Rs) from the averaged
        # model; the exact stepper should land on it to sub-mV.
        params = BuckParameters(
            switch_resistance_ohm=0.02, inductor_resistance_ohm=0.01
        )
        duty, load = 0.5, 1.0
        settled = BuckPowerStage(params, method="exact").settle(duty, load)
        series = params.switch_resistance_ohm + params.inductor_resistance_ohm
        analytic = duty * params.input_voltage_v * load / (load + series)
        assert settled == pytest.approx(analytic, abs=2e-3)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            BuckPowerStage(BuckParameters(), method="rk4")

    def test_line_transient_override(self):
        params = BuckParameters()
        stage = BuckPowerStage(params, method="exact")
        stage.settle(0.5, 1.0)
        nominal_v = stage.state.output_voltage_v
        # Dropping the rail for a stretch of periods sags the output.
        for _ in range(50):
            stage.run_period(0.5, 1.0, source_voltage_v=1.2)
        assert stage.state.output_voltage_v < nominal_v - 0.1
        with pytest.raises(ValueError):
            stage.run_period(0.5, 1.0, source_voltage_v=-1.0)

    def test_retuned_parameters_invalidate_cache(self):
        # Regression: reassigning .parameters used to reuse cached
        # transition coefficients of the old plant.
        retuned = BuckParameters(inductance_h=300e-9)
        stage = BuckPowerStage(BuckParameters(), method="exact")
        stage.run_period(0.5, 1.0)
        stage.parameters = retuned
        stage.reset()
        stage.run_period(0.5, 1.0)
        fresh = BuckPowerStage(retuned, method="exact")
        fresh.run_period(0.5, 1.0)
        assert stage.state.output_voltage_v == fresh.state.output_voltage_v
        assert stage.state.inductor_current_a == fresh.state.inductor_current_a

    def test_interval_cache_is_bounded(self):
        stage = BuckPowerStage(BuckParameters(), method="exact")
        stage.MAX_CACHED_INTERVALS = 32
        rng = np.random.default_rng(0)
        for duty in rng.uniform(0.1, 0.9, 200):
            stage.run_period(float(duty), 1.0)
        assert len(stage._interval_cache) <= 32

"""Statistical-validation suite for the Monte-Carlo estimators.

Three layers of checks, all seeded and deterministic:

* **Interval coverage** -- over thousands of Bernoulli replications, the
  Wilson and Clopper-Pearson intervals must achieve at least
  nominal - 2 % empirical coverage from the coin-flip regime down to the
  ppm regime (p = 1e-5 over a million trials exercises the
  ``_beta_quantile`` bisection next to x -> 0).
* **Estimator correctness** -- the self-normalized importance-sampling
  and post-stratified estimates must agree with analytic truth on a
  closed-form toy problem (the normal tail probability P(Z > c)), and
  the weighted accumulator must survive log-weights far beyond float
  range.
* **Chunk invariance** -- the tilted and stratified sample streams must
  be independent of chunking (the ``(seed, tag, i)`` per-instance keying
  contract of :mod:`repro.mc`), with the identity tilt reproducing the
  vanilla draws bit for bit, and the new modules must pass the
  ``seeding-contract`` lint rule with zero suppressions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter.buck import BuckParameters
from repro.core.yield_analysis import (
    CORRELATION_PRESETS,
    ComponentStratification,
    ComponentTilt,
    ComponentVariation,
    component_correlation_preset,
    rare_event_regulation_yield,
)
from repro.mc import (
    RunningMoments,
    SampleChunk,
    Stratum,
    WeightedRunningMoments,
    WeightedSampleChunk,
    importance_sample,
    interval_function,
    normal_cdf,
    normal_ppf,
    stratified_sample,
)
from repro.technology.variation import CorrelatedVariationModel, VariationModel

# ---------------------------------------------------------------------------
# Interval coverage from the coin-flip regime to the ppm regime.
# ---------------------------------------------------------------------------

#: (true probability, trials per replication); the trial counts scale so
#: every regime has signal (expected successes >= 10).
COVERAGE_CASES = [
    (0.5, 100),
    (0.05, 500),
    (1e-3, 10_000),
    (1e-5, 1_000_000),
]
REPLICATIONS = 2000
CONFIDENCE = 0.95
#: Empirical coverage floor: nominal minus two points of Monte-Carlo and
#: approximation slack (Wilson is approximate; Clopper-Pearson should sit
#: clearly above nominal).
COVERAGE_FLOOR = CONFIDENCE - 0.02


class TestIntervalCoverage:
    @pytest.mark.parametrize("method", ["wilson", "clopper_pearson"])
    @pytest.mark.parametrize(("probability", "trials"), COVERAGE_CASES)
    def test_empirical_coverage_meets_nominal(
        self, method: str, probability: float, trials: int
    ) -> None:
        interval = interval_function(method)
        rng = np.random.default_rng((20260808, trials))
        successes = rng.binomial(trials, probability, size=REPLICATIONS)
        # Few distinct success counts occur, so memoize the interval per
        # count -- this is what keeps a million-trial regime cheap.
        cache = {}
        covered = 0
        for count in successes:
            bounds = cache.get(int(count))
            if bounds is None:
                bounds = interval(int(count), trials, CONFIDENCE)
                cache[int(count)] = bounds
            covered += bounds.contains(probability)
        assert covered / REPLICATIONS >= COVERAGE_FLOOR

    def test_clopper_pearson_is_wider_than_wilson_in_ppm_regime(self) -> None:
        # The exact interval is conservative: never narrower overall than
        # the approximate one.  Spot-check the ppm regime where the beta
        # quantile bisection runs next to x -> 0.
        wilson = interval_function("wilson")(3, 1_000_000, CONFIDENCE)
        exact = interval_function("clopper_pearson")(3, 1_000_000, CONFIDENCE)
        assert exact.lower <= wilson.lower
        assert (exact.upper - exact.lower) >= (wilson.upper - wilson.lower)
        assert 0.0 < exact.lower < 3e-6 < exact.upper < 1e-5


# ---------------------------------------------------------------------------
# The closed-form toy problem: P(Z > c) for a standard normal.
# ---------------------------------------------------------------------------

TAIL_C = 3.0
TAIL_TRUTH = 1.0 - normal_cdf(TAIL_C)
#: Proposal N(2, 1.5^2): shifted toward the tail and *widened* so the
#: likelihood ratio stays bounded on both flanks (a pure shift tilt has
#: unbounded weights on the left tail and a collapsing ESS).
TAIL_SHIFT = 2.0
TAIL_SCALE = 1.5


def _tilted_tail_draw(first_instance: int, count: int) -> WeightedSampleChunk:
    """Tilted chunk for P(Z > c): widened proposal, per-instance streams."""
    passes = np.empty(count, dtype=bool)
    log_weights = np.empty(count)
    values = np.empty(count)
    for offset in range(count):
        i = first_instance + offset
        z = float(np.random.default_rng((97, i)).standard_normal())
        shifted = TAIL_SHIFT + TAIL_SCALE * z
        passes[offset] = shifted > TAIL_C
        log_weights[offset] = (
            0.5 * z * z - 0.5 * shifted * shifted + math.log(TAIL_SCALE)
        )
        values[offset] = shifted
    return WeightedSampleChunk(
        passes={"tail": passes}, log_weights=log_weights, values={"z": values}
    )


class TestImportanceSampling:
    def test_self_normalized_estimate_matches_analytic_truth(self) -> None:
        result = importance_sample(
            _tilted_tail_draw,
            primary="tail",
            precision=0.0,
            max_samples=4096,
            chunk_size=256,
        )
        stat = result.weighted["tail"]
        # Unbiasedness gate: within 3 Monte-Carlo sigmas of truth.
        assert abs(result.estimate - TAIL_TRUTH) <= 3.0 * stat.standard_error()
        assert result.interval.contains(TAIL_TRUTH)
        # The tilt centres the proposal on the boundary, so the tail is no
        # longer rare under q and the weights stay healthy.
        assert result.effective_sample_size > 500.0
        # The reweighted mean of the proposal draws estimates E[Z] = 0.
        assert abs(result.value_moments["z"].mean) <= (
            3.0 * result.value_moments["z"].standard_error()
        )

    def test_ess_guard_blocks_premature_precision_stop(self) -> None:
        # A single chunk satisfies the (loose) precision target, but the
        # ESS floor forces the run onward.
        loose = importance_sample(
            _tilted_tail_draw,
            primary="tail",
            precision=0.5,
            max_samples=512,
            chunk_size=64,
            min_ess=400.0,
        )
        assert loose.trials > 64
        without_guard = importance_sample(
            _tilted_tail_draw,
            primary="tail",
            precision=0.5,
            max_samples=512,
            chunk_size=64,
            min_ess=0.0,
        )
        assert without_guard.trials == 64

    @given(chunk_size=st.integers(min_value=1, max_value=97))
    @settings(max_examples=25, deadline=None)
    def test_estimates_invariant_to_chunk_size(self, chunk_size: int) -> None:
        reference = importance_sample(
            _tilted_tail_draw,
            primary="tail",
            precision=0.0,
            max_samples=240,
            chunk_size=60,
        )
        chunked = importance_sample(
            _tilted_tail_draw,
            primary="tail",
            precision=0.0,
            max_samples=240,
            chunk_size=chunk_size,
        )
        assert chunked.trials == reference.trials == 240
        # The per-instance stream is identical; only the fold order differs,
        # so the accumulated sums agree to round-off.
        np.testing.assert_allclose(
            chunked.estimate, reference.estimate, rtol=1e-9
        )
        np.testing.assert_allclose(
            chunked.effective_sample_size,
            reference.effective_sample_size,
            rtol=1e-9,
        )

    def test_validation_errors(self) -> None:
        with pytest.raises(ValueError, match="primary"):
            importance_sample(
                lambda first, count: WeightedSampleChunk(
                    passes={"other": np.zeros(count, dtype=bool)},
                    log_weights=np.zeros(count),
                ),
                primary="tail",
                precision=0.0,
                max_samples=64,
            )
        with pytest.raises(ValueError, match="shape"):
            importance_sample(
                lambda first, count: WeightedSampleChunk(
                    passes={"tail": np.zeros(count, dtype=bool)},
                    log_weights=np.zeros(count + 1),
                ),
                primary="tail",
                precision=0.0,
                max_samples=64,
            )
        with pytest.raises(ValueError, match="min_ess"):
            importance_sample(
                _tilted_tail_draw,
                primary="tail",
                precision=0.0,
                max_samples=64,
                min_ess=-1.0,
            )


def _stratified_tail_strata(cutoff: float) -> list[Stratum]:
    """Sigma-shell strata for P(Z > cutoff), boundaries at 2 and 3 sigma."""
    edges = (-math.inf, 2.0, 3.0, math.inf)
    strata = []
    for index, (lower, upper) in enumerate(zip(edges, edges[1:])):
        cdf_lower, cdf_upper = normal_cdf(lower), normal_cdf(upper)

        def draw(
            first_instance: int,
            count: int,
            index: int = index,
            cdf_lower: float = cdf_lower,
            cdf_upper: float = cdf_upper,
        ) -> SampleChunk:
            passes = np.empty(count, dtype=bool)
            for offset in range(count):
                i = first_instance + offset
                u = float(np.random.default_rng((31, index, i)).random())
                quantile = cdf_lower + u * (cdf_upper - cdf_lower)
                quantile = min(max(quantile, 1e-12), 1.0 - 1e-12)
                passes[offset] = normal_ppf(quantile) > cutoff
            return SampleChunk(passes={"tail": passes})

        strata.append(
            Stratum(name=f"s{index}", weight=cdf_upper - cdf_lower, draw=draw)
        )
    return strata


class TestStratifiedSampling:
    def test_post_stratified_estimate_matches_analytic_truth(self) -> None:
        cutoff = 2.5
        truth = 1.0 - normal_cdf(cutoff)
        result = stratified_sample(
            _stratified_tail_strata(cutoff),
            primary="tail",
            precision=0.0,
            max_samples=3000,
            chunk_size=100,
        )
        assert result.interval.contains(truth)
        assert abs(result.estimate - truth) <= 0.5 * truth
        # Every stratum got its exploration floor despite Neyman greed.
        assert all(row.trials >= 100 for row in result.strata)
        # The boundary stratum carries the mixed outcomes; the outer
        # shells are pure by construction.
        by_name = {row.name: row for row in result.strata}
        assert by_name["s0"].successes.get("tail", 0) == 0
        assert by_name["s2"].successes["tail"] == by_name["s2"].trials

    def test_neyman_allocation_concentrates_on_mixed_stratum(self) -> None:
        cutoff = 2.5
        result = stratified_sample(
            _stratified_tail_strata(cutoff),
            primary="tail",
            precision=0.0,
            max_samples=4000,
            chunk_size=50,
            min_samples_per_stratum=50,
        )
        by_name = {row.name: row for row in result.strata}
        # s1 = (2, 3] straddles the cutoff, so it carries the within-stratum
        # variance; proportional allocation would hand it ~2 % of the budget
        # (its probability mass), Neyman hands it an order of magnitude more.
        share = by_name["s1"].trials / result.trials
        assert share > 10.0 * by_name["s1"].weight
        # The far-tail shell is nearly pure (all passes) and tiny, so the
        # greedy rule leaves it close to its exploration floor.
        assert by_name["s1"].trials > by_name["s2"].trials

    def test_weight_and_name_validation(self) -> None:
        strata = _stratified_tail_strata(2.5)
        bad_weight = [
            Stratum(name=s.name, weight=0.5, draw=s.draw) for s in strata
        ]
        with pytest.raises(ValueError, match="sum to 1"):
            stratified_sample(
                bad_weight, primary="tail", precision=0.0, max_samples=300
            )
        duplicated = [
            Stratum(name="dup", weight=s.weight, draw=s.draw) for s in strata
        ]
        with pytest.raises(ValueError, match="unique"):
            stratified_sample(
                duplicated, primary="tail", precision=0.0, max_samples=300
            )
        with pytest.raises(ValueError, match="at least one draw"):
            stratified_sample(
                strata, primary="tail", precision=0.0, max_samples=2
            )
        with pytest.raises(ValueError, match="weight"):
            Stratum(name="zero", weight=0.0, draw=strata[0].draw)

    def test_deterministic_reruns(self) -> None:
        kwargs = dict(
            primary="tail", precision=0.0, max_samples=1200, chunk_size=60
        )
        first = stratified_sample(_stratified_tail_strata(2.5), **kwargs)
        second = stratified_sample(_stratified_tail_strata(2.5), **kwargs)
        assert first.estimates == second.estimates
        assert [row.trials for row in first.strata] == [
            row.trials for row in second.strata
        ]


# ---------------------------------------------------------------------------
# The weighted accumulator.
# ---------------------------------------------------------------------------


class TestWeightedRunningMoments:
    def test_matches_direct_computation(self) -> None:
        rng = np.random.default_rng(5)
        values = rng.random(400)
        log_weights = rng.normal(0.0, 2.0, 400)
        stat = WeightedRunningMoments()
        for start in (0, 100, 250, 399, 400):
            stat.extend(values[start : start + 1], log_weights[start : start + 1])
        stat2 = WeightedRunningMoments()
        stat2.extend(values[:4], log_weights[:4])
        weights = np.exp(log_weights[:4] - log_weights[:4].max())
        np.testing.assert_allclose(
            stat2.mean, float((weights * values[:4]).sum() / weights.sum())
        )
        np.testing.assert_allclose(
            stat2.effective_sample_size(),
            float(weights.sum() ** 2 / (weights * weights).sum()),
        )

    def test_survives_log_weights_beyond_float_range(self) -> None:
        # exp(800) overflows a double; the offset representation must not.
        stat = WeightedRunningMoments()
        stat.extend(np.array([1.0, 0.0]), np.array([800.0, 800.0]))
        stat.extend(np.array([1.0]), np.array([900.0]))
        # The third observation's weight dwarfs the first two: mean -> 1.
        assert 0.99 < stat.mean <= 1.0
        assert math.isfinite(stat.effective_sample_size())
        assert stat.count == 3

    def test_equal_weights_reduce_to_unweighted(self) -> None:
        values = np.array([1.0, 0.0, 1.0, 1.0])
        stat = WeightedRunningMoments()
        stat.extend(values, np.full(4, -123.0))
        np.testing.assert_allclose(stat.mean, values.mean())
        np.testing.assert_allclose(stat.effective_sample_size(), 4.0)
        np.testing.assert_allclose(
            stat.variance_of_mean(),
            float(((values - values.mean()) ** 2).sum()) / 16.0,
        )

    def test_zero_weight_chunk_counts_but_carries_no_mass(self) -> None:
        stat = WeightedRunningMoments()
        stat.extend(np.array([1.0, 1.0]), np.array([-math.inf, -math.inf]))
        assert stat.count == 2
        assert math.isnan(stat.mean)
        assert stat.effective_sample_size() == 0.0
        interval = stat.interval()
        assert (interval.lower, interval.upper) == (0.0, 1.0)
        stat.extend(np.array([1.0]), np.array([0.0]))
        assert stat.mean == 1.0

    def test_empty_chunk_is_noop_and_validation(self) -> None:
        stat = WeightedRunningMoments()
        stat.push(1.0, 0.0)
        stat.extend(np.array([]), np.array([]))
        assert stat.count == 1
        with pytest.raises(ValueError, match="align"):
            stat.extend(np.array([1.0]), np.array([0.0, 0.0]))
        with pytest.raises(ValueError, match="finite"):
            stat.extend(np.array([1.0]), np.array([math.nan]))
        with pytest.raises(ValueError, match="finite"):
            stat.extend(np.array([1.0]), np.array([math.inf]))


# ---------------------------------------------------------------------------
# RunningMoments edge cases (the documented contract).
# ---------------------------------------------------------------------------


class TestRunningMomentsEdgeCases:
    def test_extend_empty_is_strict_noop(self) -> None:
        fresh = RunningMoments()
        fresh.extend([])
        assert fresh.count == 0
        summary = fresh.summary()
        assert math.isnan(summary["mean"])
        assert math.isnan(summary["min"]) and math.isnan(summary["max"])

        seeded = RunningMoments()
        seeded.extend([2.0, 4.0])
        before = (seeded.count, seeded.mean, seeded.minimum, seeded.maximum)
        seeded.extend(np.array([]))
        assert (
            seeded.count,
            seeded.mean,
            seeded.minimum,
            seeded.maximum,
        ) == before

    def test_sample_variance_of_single_observation_is_nan(self) -> None:
        stat = RunningMoments()
        stat.push(3.0)
        assert math.isnan(stat.variance(ddof=1))
        assert math.isnan(stat.std(ddof=1))
        assert stat.variance(ddof=0) == 0.0

    def test_chan_merge_with_empty_side_is_exact(self) -> None:
        values = np.random.default_rng(8).normal(5.0, 3.0, 257)
        merged = RunningMoments()
        merged.extend(values)  # empty accumulator + chunk
        assert merged.mean == float(values.mean())
        assert merged.variance() == float(
            ((values - values.mean()) ** 2).sum() / values.size
        )
        assert merged.minimum == float(values.min())
        assert merged.maximum == float(values.max())


# ---------------------------------------------------------------------------
# Chunk-stable streams: tilted and stratified component/silicon draws.
# ---------------------------------------------------------------------------

NOMINAL = BuckParameters()
VARIATION = ComponentVariation(seed=77)
TILT = ComponentTilt(
    inductance_shift=1.2, capacitance_shift=-2.5, sigma_scale=1.3
)
STRATIFICATION = ComponentStratification()
_FIELDS = (
    "input_voltage_v",
    "inductance_h",
    "capacitance_f",
    "switch_resistance_ohm",
    "inductor_resistance_ohm",
)


class TestChunkStableStreams:
    def test_identity_tilt_reproduces_vanilla_bitwise(self) -> None:
        vanilla = VARIATION.sample_instances(NOMINAL, 16, first_instance=5)
        tilted, log_weights = VARIATION.sample_instances_tilted(
            NOMINAL, 16, first_instance=5, tilt=ComponentTilt()
        )
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(vanilla, name), getattr(tilted, name)
            )
        np.testing.assert_array_equal(log_weights, np.zeros(16))

    def test_identity_silicon_tilt_reproduces_vanilla_bitwise(self) -> None:
        model = VariationModel(seed=13)
        for instance in (0, 7):
            vanilla = model.sample(12, 3, instance=instance)
            tilted, log_lr = model.sample_tilted(12, 3, instance=instance)
            np.testing.assert_array_equal(
                vanilla.multipliers, tilted.multipliers
            )
            assert log_lr == 0.0

    @given(split=st.integers(min_value=1, max_value=23))
    @settings(max_examples=25, deadline=None)
    def test_tilted_component_stream_is_chunk_invariant(
        self, split: int
    ) -> None:
        whole, whole_lw = VARIATION.sample_instances_tilted(
            NOMINAL, 24, tilt=TILT
        )
        head, head_lw = VARIATION.sample_instances_tilted(
            NOMINAL, split, tilt=TILT
        )
        tail, tail_lw = VARIATION.sample_instances_tilted(
            NOMINAL, 24 - split, first_instance=split, tilt=TILT
        )
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(whole, name),
                np.concatenate([getattr(head, name), getattr(tail, name)]),
            )
        np.testing.assert_array_equal(
            whole_lw, np.concatenate([head_lw, tail_lw])
        )

    @given(split=st.integers(min_value=1, max_value=23))
    @settings(max_examples=25, deadline=None)
    def test_stratum_component_stream_is_chunk_invariant(
        self, split: int
    ) -> None:
        whole = VARIATION.sample_instances_stratum(
            NOMINAL, 24, 1, stratification=STRATIFICATION
        )
        head = VARIATION.sample_instances_stratum(
            NOMINAL, split, 1, stratification=STRATIFICATION
        )
        tail = VARIATION.sample_instances_stratum(
            NOMINAL, 24 - split, 1, first_instance=split,
            stratification=STRATIFICATION,
        )
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(whole, name),
                np.concatenate([getattr(head, name), getattr(tail, name)]),
            )

    @given(split=st.integers(min_value=1, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_tilted_silicon_stream_is_chunk_invariant(self, split: int) -> None:
        model = VariationModel(seed=19)
        whole, whole_lw = model.sample_batch_tilted(
            16, 8, 2, shift=0.9, sigma_scale=1.2
        )
        head, head_lw = model.sample_batch_tilted(
            split, 8, 2, shift=0.9, sigma_scale=1.2
        )
        tail, tail_lw = model.sample_batch_tilted(
            16 - split, 8, 2, first_instance=split, shift=0.9, sigma_scale=1.2
        )
        np.testing.assert_array_equal(
            whole.multipliers,
            np.concatenate([head.multipliers, tail.multipliers]),
        )
        np.testing.assert_array_equal(
            whole_lw, np.concatenate([head_lw, tail_lw])
        )

    def test_stratum_draws_land_in_their_shell(self) -> None:
        for stratum in range(STRATIFICATION.num_strata):
            lower_z, upper_z = STRATIFICATION.bounds(stratum)
            parameters = VARIATION.sample_instances_stratum(
                NOMINAL, 64, stratum, stratification=STRATIFICATION
            )
            z = (
                np.log(parameters.capacitance_f / NOMINAL.capacitance_f)
                / VARIATION.capacitance_sigma
            )
            assert (z > lower_z).all()
            assert (z <= upper_z + 1e-9).all()

    def test_stratification_weights_are_exact_masses(self) -> None:
        weights = STRATIFICATION.weights()
        assert abs(sum(weights) - 1.0) < 1e-12
        np.testing.assert_allclose(weights[0], normal_cdf(-3.5))
        np.testing.assert_allclose(
            weights[1], normal_cdf(-2.5) - normal_cdf(-3.5)
        )

    def test_tilt_validation(self) -> None:
        with pytest.raises(ValueError, match="sigma_scale"):
            ComponentTilt(sigma_scale=0.0)
        with pytest.raises(ValueError, match="finite"):
            ComponentTilt(capacitance_shift=math.inf)
        with pytest.raises(ValueError, match="axis"):
            ComponentStratification(axis="nonsense")
        with pytest.raises(ValueError, match="increasing"):
            ComponentStratification(boundaries=(1.0, 1.0))
        assert ComponentTilt().is_identity()
        assert not TILT.is_identity()


# ---------------------------------------------------------------------------
# The domain wrapper's validation (no simulation involved).
# ---------------------------------------------------------------------------


class TestRareEventWrapperValidation:
    def test_rejects_bad_configurations(self) -> None:
        kwargs = dict(dip_limit_v=0.6, variation=VARIATION, max_instances=16)
        with pytest.raises(ValueError, match="estimator"):
            rare_event_regulation_yield(
                NOMINAL, 0.9, estimator="bogus", **kwargs
            )
        with pytest.raises(ValueError, match="tilt"):
            rare_event_regulation_yield(
                NOMINAL, 0.9, estimator="vanilla", tilt=TILT, **kwargs
            )
        with pytest.raises(ValueError, match="stratification"):
            rare_event_regulation_yield(
                NOMINAL,
                0.9,
                estimator="importance",
                stratification=STRATIFICATION,
                **kwargs,
            )
        with pytest.raises(ValueError, match="dip_limit_v"):
            rare_event_regulation_yield(
                NOMINAL, 0.9, dip_limit_v=1.5, variation=VARIATION
            )
        with pytest.raises(ValueError, match="settle_periods"):
            rare_event_regulation_yield(
                NOMINAL,
                0.9,
                dip_limit_v=0.6,
                variation=VARIATION,
                periods=100,
                settle_periods=100,
            )


# ---------------------------------------------------------------------------
# Correlated component draws: statistics, bitwise identity, validation.
# ---------------------------------------------------------------------------

#: Fleet size of the empirical-correlation check.  The sample correlation
#: coefficient's asymptotic standard error is (1 - rho^2) / sqrt(n); at
#: n = 50_000 three sigmas of the rho = 0 entries is ~0.013.
CORRELATION_DRAWS = 50_000


def _recover_z(parameters: object) -> np.ndarray:
    """Invert the per-axis transforms back to the underlying normals.

    The lognormal axes invert through ``log``, the resistance axes through
    ``(x - 1) / sigma``; both are exact (the resistance clip at zero never
    fires at these sigmas), so the recovered rows *are* the mixed
    standard-normal draws and their sample correlation estimates the
    declared matrix directly.
    """
    return np.stack(
        [
            np.log(parameters.input_voltage_v / NOMINAL.input_voltage_v)
            / VARIATION.input_voltage_sigma,
            np.log(parameters.inductance_h / NOMINAL.inductance_h)
            / VARIATION.inductance_sigma,
            np.log(parameters.capacitance_f / NOMINAL.capacitance_f)
            / VARIATION.capacitance_sigma,
            (
                parameters.switch_resistance_ohm
                / NOMINAL.switch_resistance_ohm
                - 1.0
            )
            / VARIATION.resistance_sigma,
            (
                parameters.inductor_resistance_ohm
                / NOMINAL.inductor_resistance_ohm
                - 1.0
            )
            / VARIATION.resistance_sigma,
        ]
    )


class TestCorrelatedVariation:
    @pytest.mark.parametrize("preset", ["passives", "thermal"])
    def test_empirical_correlation_matches_preset(self, preset: str) -> None:
        model = component_correlation_preset(preset)
        parameters = VARIATION.sample_batch(
            NOMINAL, CORRELATION_DRAWS, correlation=model
        )
        empirical = np.corrcoef(_recover_z(parameters))
        truth = CORRELATION_PRESETS[preset]
        tolerance = 3.0 * (1.0 - truth**2) / math.sqrt(CORRELATION_DRAWS)
        assert (np.abs(empirical - truth) <= tolerance + 1e-9).all()

    @pytest.mark.parametrize("preset", ["passives", "thermal"])
    def test_marginals_keep_iid_moments(self, preset: str) -> None:
        model = component_correlation_preset(preset)
        parameters = VARIATION.sample_batch(
            NOMINAL, CORRELATION_DRAWS, correlation=model
        )
        z = _recover_z(parameters)
        bound = 3.0 / math.sqrt(CORRELATION_DRAWS)
        assert (np.abs(z.mean(axis=1)) <= bound + 1e-9).all()
        assert (np.abs(z.std(axis=1) - 1.0) <= 2.0 * bound).all()

    def test_identity_sample_batch_is_bitwise_vanilla(self) -> None:
        vanilla = VARIATION.sample_batch(NOMINAL, 64)
        for model in (
            component_correlation_preset("identity"),
            CorrelatedVariationModel.identity(5),
        ):
            correlated = VARIATION.sample_batch(NOMINAL, 64, correlation=model)
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    getattr(vanilla, name), getattr(correlated, name)
                )

    def test_identity_sample_instances_is_bitwise_vanilla(self) -> None:
        vanilla = VARIATION.sample_instances(NOMINAL, 24, first_instance=3)
        correlated = VARIATION.sample_instances(
            NOMINAL,
            24,
            first_instance=3,
            correlation=component_correlation_preset("identity"),
        )
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(vanilla, name), getattr(correlated, name)
            )

    @given(split=st.integers(min_value=1, max_value=23))
    @settings(max_examples=25, deadline=None)
    def test_correlated_instance_stream_is_chunk_invariant(
        self, split: int
    ) -> None:
        model = component_correlation_preset("passives")
        whole = VARIATION.sample_instances(NOMINAL, 24, correlation=model)
        head = VARIATION.sample_instances(NOMINAL, split, correlation=model)
        tail = VARIATION.sample_instances(
            NOMINAL, 24 - split, first_instance=split, correlation=model
        )
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(whole, name),
                np.concatenate([getattr(head, name), getattr(tail, name)]),
            )

    def test_non_psd_matrix_raises_typed_error(self) -> None:
        matrix = np.eye(5)
        matrix[0, 1] = matrix[1, 0] = 0.9
        matrix[0, 2] = matrix[2, 0] = 0.9
        matrix[1, 2] = matrix[2, 1] = -0.9
        with pytest.raises(ValueError, match="positive semi-definite"):
            CorrelatedVariationModel(matrix=matrix)

    def test_matrix_validation(self) -> None:
        with pytest.raises(ValueError, match="square"):
            CorrelatedVariationModel(matrix=np.ones((2, 3)))
        lopsided = np.eye(3)
        lopsided[0, 1] = 0.5
        with pytest.raises(ValueError, match="symmetric"):
            CorrelatedVariationModel(matrix=lopsided)
        scaled = np.eye(3) * 2.0
        with pytest.raises(ValueError, match="diagonal"):
            CorrelatedVariationModel(matrix=scaled)
        with pytest.raises(ValueError, match="unknown correlation preset"):
            component_correlation_preset("bogus")

    def test_dimension_mismatch_raises(self) -> None:
        matrix = np.eye(3)
        matrix[0, 1] = matrix[1, 0] = 0.5
        small = CorrelatedVariationModel(matrix=matrix)
        with pytest.raises(ValueError, match="spans 3 axes"):
            VARIATION.sample_batch(NOMINAL, 8, correlation=small)
        with pytest.raises(ValueError, match="spans 3 axes"):
            VARIATION.sample_instances(NOMINAL, 8, correlation=small)


# ---------------------------------------------------------------------------
# Lint: the seeding contract must hold over the new modules, unsuppressed.
# ---------------------------------------------------------------------------

NEW_MODULES = [
    "src/repro/mc.py",
    "src/repro/core/yield_analysis.py",
    "src/repro/technology/variation.py",
    "src/repro/technology/thermal.py",
    "src/repro/converter/missions.py",
    "src/repro/pipeline.py",
    "src/repro/experiments/figure15_mission.py",
    "src/repro/experiments/figure15_rare.py",
]


class TestSeedingContractLint:
    def test_new_modules_pass_seeding_contract_unsuppressed(self) -> None:
        from pathlib import Path

        from repro.lint import lint_paths

        root = Path(__file__).resolve().parent.parent
        paths = [root / name for name in NEW_MODULES]
        assert lint_paths(paths, select=["seeding-contract"]) == []
        for path in paths:
            assert "repro-lint: disable" not in path.read_text(
                encoding="utf-8"
            ), f"suppression comment found in {path}"

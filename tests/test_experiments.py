"""Tests for the experiment harnesses: every table/figure regenerates and the
paper's qualitative claims hold."""

from __future__ import annotations

import pytest

from repro.experiments import registry, run_experiment
from repro.experiments.base import ExperimentResult, register
from repro.experiments.runner import main as runner_main
from repro.experiments.table5 import PAPER_TABLE5
from repro.experiments.table6 import FREQUENCIES_MHZ, PAPER_TABLE6

EXPECTED_EXPERIMENTS = {
    "table2",
    "table4",
    "table5",
    "table6",
    "fig15",
    "fig15_mc",
    "fig19",
    "fig21",
    "fig23",
    "fig28",
    "fig37",
    "fig41_42",
    "fig47_48",
    "fig50_51",
    "fig50_51_mc",
    "design_example",
}


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert EXPECTED_EXPERIMENTS <= set(registry)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("table5")(lambda: None)

    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_EXPERIMENTS))
    def test_experiment_runs_and_reports(self, experiment_id):
        result = run_experiment(experiment_id)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.data
        assert len(result.report) > 40


class TestTable2Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table2")

    def test_counter_needs_much_higher_clock(self, result):
        for row in result.data["rows"]:
            assert row["counter_clock_mhz"] > row["delay_line_clock_mhz"]
            assert row["counter_clock_mhz"] == 2 ** row["bits"]

    def test_delay_line_area_larger_at_high_resolution(self, result):
        high_res = [row for row in result.data["rows"] if row["bits"] >= 8]
        for row in high_res:
            assert row["delay_line_area_um2"] > row["counter_area_um2"]

    def test_hybrid_is_the_compromise(self, result):
        for row in result.data["rows"]:
            assert row["hybrid_clock_mhz"] < row["counter_clock_mhz"]
            if row["bits"] >= 8:
                assert row["hybrid_area_um2"] < row["delay_line_area_um2"]

    def test_13_bit_counter_clock_is_multi_ghz(self, result):
        row = next(r for r in result.data["rows"] if r["bits"] == 13)
        # Paper section 2.2.1: "a clock frequency in the range of multiple GHz".
        assert row["counter_clock_mhz"] > 2000.0


class TestTable4Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table4")

    def test_proposed_wins_linearity_and_calibration(self, result):
        assert result.data["proposed_wins_linearity"]
        assert result.data["proposed_wins_calibration_time"]

    def test_conventional_cell_is_multibranch(self, result):
        assert result.data["conventional_branches"] >= 4


class TestTable5Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table5")

    def test_tap_counts_match_paper(self, result):
        assert result.data["proposed"]["taps"] == PAPER_TABLE5["proposed"]["taps"]
        assert (
            result.data["conventional"]["taps"]
            == PAPER_TABLE5["conventional"]["taps"]
        )

    def test_total_areas_within_five_percent_of_paper(self, result):
        for scheme in ("proposed", "conventional"):
            measured = result.data[scheme]["total_area_um2"]
            reported = PAPER_TABLE5[scheme]["total_area_um2"]
            assert measured == pytest.approx(reported, rel=0.05)

    def test_proposed_smaller_by_similar_factor(self, result):
        paper_ratio = (
            PAPER_TABLE5["conventional"]["total_area_um2"]
            / PAPER_TABLE5["proposed"]["total_area_um2"]
        )
        assert result.data["area_ratio"] == pytest.approx(paper_ratio, rel=0.1)

    def test_area_distribution_close_to_paper(self, result):
        for scheme in ("proposed", "conventional"):
            for block, paper_pct in PAPER_TABLE5[scheme]["distribution"].items():
                measured_pct = result.data[scheme]["distribution"][block]
                assert measured_pct == pytest.approx(paper_pct, abs=2.0), (
                    scheme,
                    block,
                )

    def test_conventional_dominated_by_line_and_controller(self, result):
        distribution = result.data["conventional"]["distribution"]
        assert distribution["Delay Line"] > 45.0
        assert distribution["Controller"] > 40.0
        assert distribution["Output MUX"] < 5.0


class TestTable6Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table6")

    def test_buffers_per_cell_match_paper(self, result):
        for frequency in FREQUENCIES_MHZ:
            assert (
                result.data["per_frequency"][frequency]["buffers_per_cell"]
                == PAPER_TABLE6[frequency]["buffers_per_cell"]
            )

    def test_total_area_within_five_percent_of_paper(self, result):
        for frequency in FREQUENCIES_MHZ:
            measured = result.data["per_frequency"][frequency]["total_area_um2"]
            assert measured == pytest.approx(
                PAPER_TABLE6[frequency]["total_area_um2"], rel=0.05
            )

    def test_area_decreases_with_frequency(self, result):
        areas = [
            result.data["per_frequency"][frequency]["total_area_um2"]
            for frequency in FREQUENCIES_MHZ
        ]
        assert areas == sorted(areas, reverse=True)

    def test_delay_line_share_shrinks_with_frequency(self, result):
        shares = [
            result.data["per_frequency"][frequency]["distribution"]["Delay Line"]
            for frequency in FREQUENCIES_MHZ
        ]
        assert shares == sorted(shares, reverse=True)
        for frequency in FREQUENCIES_MHZ:
            assert result.data["per_frequency"][frequency]["distribution"][
                "Delay Line"
            ] == pytest.approx(PAPER_TABLE6[frequency]["delay_line_pct"], abs=2.0)


class TestTimingFigures:
    def test_fig19_duties(self):
        result = run_experiment("fig19")
        for word, duty in result.data["measured_duties"].items():
            assert duty == pytest.approx((word + 1) / 4, abs=0.01)

    def test_fig21_duties(self):
        result = run_experiment("fig21")
        for word, duty in result.data["measured_duties"].items():
            assert duty == pytest.approx((word + 1) / 4, abs=0.01)

    def test_fig23_featured_word(self):
        result = run_experiment("fig23")
        assert result.data["featured_duty"] == pytest.approx(23 / 32, abs=0.005)
        assert result.data["counter_clock_mhz"] == pytest.approx(8.0)
        assert result.data["num_cells"] == 4

    def test_fig28_corner_spread(self):
        result = run_experiment("fig28")
        per_corner = result.data["per_corner"]
        assert per_corner["fast"]["buffer_delay_ps"] == pytest.approx(20.0)
        assert per_corner["slow"]["buffer_delay_ps"] == pytest.approx(80.0)
        # The uncalibrated mid-scale tap drifts from 25 % to ~100 % duty.
        assert per_corner["fast"]["uncalibrated_duty_at_mid_tap"] < 0.3
        assert per_corner["slow"]["uncalibrated_duty_at_mid_tap"] > 0.95


class TestLockingFigures:
    def test_fig37_locks_at_fast_and_typical(self):
        result = run_experiment("fig37")
        assert result.data["per_corner"]["fast"]["locked"]
        assert result.data["per_corner"]["typical"]["locked"]

    def test_fig41_42_sequential_is_worst(self):
        result = run_experiment("fig41_42")
        scenarios = result.data["scenarios"]
        assert (
            scenarios["sequential"]["max_error_fraction_of_period"]
            > scenarios["distributed"]["max_error_fraction_of_period"]
        )
        assert (
            scenarios["sequential"]["max_inl_lsb"]
            > scenarios["round_robin"]["max_inl_lsb"]
        )

    def test_fig47_48_proposed_locks_everywhere_and_faster(self):
        result = run_experiment("fig47_48")
        for corner, record in result.data["per_corner"].items():
            assert record["proposed_locked"], corner
        # Calibration-time comparison is meaningful at the corners where the
        # conventional DLL achieves a true lock (it saturates immediately at
        # the slow corner, see the fig37 experiment).
        for corner in ("fast", "typical"):
            record = result.data["per_corner"][corner]
            assert record["proposed_lock_cycles"] < record["conventional_lock_cycles"]

    def test_fig47_48_tap_sel_scales_with_corner(self):
        result = run_experiment("fig47_48")
        per_corner = result.data["per_corner"]
        assert (
            per_corner["fast"]["proposed_tap_sel"]
            > per_corner["typical"]["proposed_tap_sel"]
            > per_corner["slow"]["proposed_tap_sel"]
        )


class TestLinearityFigures:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig50_51")

    def test_all_curves_are_monotonic(self, result):
        for corner in ("slow", "fast"):
            for frequency, record in result.data[corner].items():
                assert record["monotonic"], (corner, frequency)

    def test_slow_corner_has_plateaus(self, result):
        for frequency in result.data["slow"]:
            slow_levels = result.data["slow"][frequency]["distinct_levels"]
            fast_levels = result.data["fast"][frequency]["distinct_levels"]
            assert slow_levels < fast_levels

    def test_fast_corner_linearity_improves_at_lower_frequency(self, result):
        fast = result.data["fast"]
        assert fast[50.0]["rms_inl_lsb"] < fast[200.0]["rms_inl_lsb"]

    def test_curves_overlay_on_common_full_scale(self, result):
        # After the x1 / x2 / x4 scaling all three frequency curves should
        # end near the same 20 ns full scale.
        for corner in ("slow", "fast"):
            finals = [
                record["scaled_delay_ns"][-1]
                for record in result.data[corner].values()
            ]
            assert max(finals) - min(finals) < 1.5

    def test_max_error_stays_within_a_few_percent(self, result):
        for corner in ("slow", "fast"):
            for record in result.data[corner].values():
                assert record["max_error_fraction"] < 0.06


class TestMonteCarloLinearityClaims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig50_51_mc")

    def test_proposed_locks_at_every_corner_and_frequency(self, result):
        for corner in ("slow", "fast"):
            for record in result.data["proposed"][corner].values():
                assert record["lock_yield"] == 1.0

    def test_conventional_fails_to_lock_at_slow_corner(self, result):
        # Paper fig37: the conventional DLL saturates at the slow corner, so
        # its population lock yield (and hence linearity yield) collapses.
        for frequency, record in result.data["conventional"]["slow"].items():
            assert record["lock_yield"] < 0.1, frequency
            assert record["linearity_yield"] < 0.1, frequency

    def test_proposed_yield_improves_at_lower_frequency(self, result):
        # Paper section 4.3: more buffers per cell average out mismatch.
        yields = [
            result.data["proposed"]["slow"][frequency]["linearity_yield"]
            for frequency in (50.0, 100.0, 200.0)
        ]
        assert yields[0] >= yields[1] >= yields[2]
        assert yields[0] > yields[2]

    def test_fast_corner_yields_are_high_for_both_schemes(self, result):
        for scheme in ("proposed", "conventional"):
            for record in result.data[scheme]["fast"].values():
                assert record["linearity_yield"] > 0.95

    def test_curves_stay_monotonic(self, result):
        for scheme in ("proposed", "conventional"):
            for corner in ("slow", "fast"):
                for record in result.data[scheme][corner].values():
                    assert record["monotonic_fraction"] == 1.0


class TestSiliconToRegulationClaims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig15_mc")

    def test_proposed_population_locks_and_regulates_everywhere(self, result):
        for corner in ("slow", "fast"):
            for per_load in result.data["proposed"][corner].values():
                for record in per_load.values():
                    assert record["lock_yield"] == 1.0
                    assert record["regulation_yield"] > 0.95

    def test_conventional_slow_corner_lock_collapse_survives_the_loop(self, result):
        # The unlocked chips still regulate (the loop servos the duty word
        # around the mis-scaled table), so a regulation-only screen would
        # pass silicon whose DPWM never calibrated -- the composed
        # closed-loop yield catches it.
        for per_load in result.data["conventional"]["slow"].values():
            for record in per_load.values():
                assert record["lock_yield"] < 0.1
                assert record["closed_loop_yield"] < 0.1
                assert record["regulation_yield"] > 0.9

    def test_fast_corner_yields_are_high_for_both_schemes(self, result):
        for scheme in ("proposed", "conventional"):
            for per_load in result.data[scheme]["fast"].values():
                for record in per_load.values():
                    assert record["closed_loop_yield"] > 0.95

    def test_limit_cycle_amplitude_is_millivolt_scale_at_constant_load(
        self, result
    ):
        for scheme in ("proposed", "conventional"):
            for corner in ("slow", "fast"):
                for per_load in result.data[scheme][corner].values():
                    record = per_load["constant"]
                    assert record["mean_limit_cycle_amplitude_v"] < 0.025

    def test_closed_loop_yield_never_exceeds_its_factors(self, result):
        for scheme in ("proposed", "conventional"):
            for corner in ("slow", "fast"):
                for per_load in result.data[scheme][corner].values():
                    for record in per_load.values():
                        assert record["closed_loop_yield"] <= min(
                            record["linearity_yield"], record["regulation_yield"]
                        ) + 1e-12


class TestDesignExampleClaims:
    def test_matches_paper_section_4_2(self):
        result = run_experiment("design_example")
        conventional = result.data["conventional"]
        proposed = result.data["proposed"]
        assert conventional["num_cells"] == 64
        assert conventional["branches"] == 4
        assert conventional["buffers_per_element"] == 2
        assert proposed["num_cells"] == 256
        assert proposed["buffers_per_cell"] == 2
        assert conventional["worst_case_total_delay_ps"] == pytest.approx(10_240.0)
        assert proposed["worst_case_total_delay_ps"] == pytest.approx(10_240.0)
        assert conventional["guarantees_locking"]
        assert proposed["guarantees_locking"]


class TestRunnerCLI:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "fig50_51_mc" in out

    def test_run_single_experiment(self, capsys):
        assert runner_main(["design_example"]) == 0
        out = capsys.readouterr().out
        assert "design_example" in out

    def test_unknown_experiment_fails(self, capsys):
        assert runner_main(["table99"]) == 2

    def test_no_arguments_prints_help(self, capsys):
        assert runner_main([]) == 1

    def test_all_with_explicit_ids_is_an_error(self, capsys):
        assert runner_main(["--all", "table4"]) == 2
        err = capsys.readouterr().err
        assert "cannot be combined" in err

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        assert runner_main(["fig41_42", "--json", str(path)]) == 0
        import json

        dumped = json.loads(path.read_text())
        assert set(dumped) == {"fig41_42"}
        scenarios = dumped["fig41_42"]["data"]["scenarios"]
        assert set(scenarios) == {"sequential", "round_robin", "distributed"}
        # Everything in the dump must be plain JSON types (no numpy left).
        assert isinstance(scenarios["sequential"]["max_inl_lsb"], float)
        assert isinstance(scenarios["sequential"]["levels"], list)

    def test_seed_threads_into_monte_carlo_experiments(self, capsys, monkeypatch):
        from repro.experiments import registry as live_registry
        from repro.experiments.base import ExperimentResult as Result

        received = {}

        def fake_mc(seed=None):
            received["seed"] = seed
            return Result("fake_mc", "t", {"seed": seed}, "report " + "x" * 40)

        monkeypatch.setitem(live_registry, "fake_mc", fake_mc)
        assert runner_main(["fake_mc", "--seed", "123"]) == 0
        assert received["seed"] == 123
        # Without the flag the experiment keeps its built-in default.
        assert runner_main(["fake_mc"]) == 0
        assert received["seed"] is None

    def test_seed_ignored_by_deterministic_experiments_with_a_note(self, capsys):
        assert runner_main(["design_example", "--seed", "9"]) == 0
        captured = capsys.readouterr()
        assert "ignored by: design_example" in captured.err
        assert "design_example" in captured.out

    def test_monte_carlo_experiments_declare_a_seed(self):
        from repro.experiments.base import accepts_seed

        for experiment_id in ("fig15", "fig15_mc", "fig50_51_mc"):
            assert accepts_seed(experiment_id), experiment_id
        for experiment_id in ("table5", "design_example", "fig19"):
            assert not accepts_seed(experiment_id), experiment_id

    def test_failing_experiment_reports_nonzero_without_traceback(
        self, capsys, monkeypatch
    ):
        from repro.experiments import registry as live_registry

        def boom():
            raise RuntimeError("exploded mid-run")

        monkeypatch.setitem(live_registry, "boom", boom)
        assert runner_main(["boom", "design_example"]) == 1
        captured = capsys.readouterr()
        assert "exploded mid-run" in captured.err
        assert "failed experiments: boom" in captured.err
        # The healthy experiment still ran and reported.
        assert "design_example" in captured.out

    def test_json_refuses_to_overwrite_without_force(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('{"precious": true}')
        assert runner_main(["design_example", "--json", str(path)]) == 2
        captured = capsys.readouterr()
        assert "refusing to overwrite" in captured.err
        assert "--force" in captured.err
        # Nothing ran and the existing file is untouched.
        assert "design_example" not in captured.out
        assert path.read_text() == '{"precious": true}'

    def test_json_force_overwrites(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('{"stale": true}')
        assert runner_main(["design_example", "--json", str(path), "--force"]) == 0
        import json

        assert set(json.loads(path.read_text())) == {"design_example"}

    def test_workers_below_one_rejected(self, capsys):
        assert runner_main(["design_example", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_workers_ignored_by_non_grid_experiments_with_a_note(self, capsys):
        assert runner_main(["design_example", "--workers", "2"]) == 0
        captured = capsys.readouterr()
        assert "ignored by: design_example" in captured.err
        assert "design_example" in captured.out

    def test_cache_dir_threads_an_orchestrator_and_reports_stats(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.experiments import registry as live_registry
        from repro.experiments.base import ExperimentResult as Result
        from repro.sweep import sweep_map

        def fake_grid(seed=None, sweep=None):
            assert sweep is not None
            assert sweep.config.workers == 1
            [payload] = sweep_map(
                lambda params: {"value": params["x"]},
                [{"x": 3, "seed": seed}],
                experiment_id="fake_grid",
                sweep=sweep,
            )
            return Result("fake_grid", "t", payload, "report " + "x" * 40)

        monkeypatch.setitem(live_registry, "fake_grid", fake_grid)
        cache_dir = tmp_path / "cache"
        argv = ["fake_grid", "--cache-dir", str(cache_dir)]
        assert runner_main(argv) == 0
        assert "sweep cache: 0 hit(s), 1 miss(es)" in capsys.readouterr().err
        assert list((cache_dir / "fake_grid").glob("*.json"))
        # The second invocation resolves every cell from the cache.
        assert runner_main(argv) == 0
        assert "sweep cache: 1 hit(s), 0 miss(es)" in capsys.readouterr().err
        # --prune-cache reports (nothing is stale here) and still runs.
        assert runner_main(argv + ["--prune-cache"]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().err

    def test_prune_cache_requires_cache_dir(self, capsys):
        assert runner_main(["design_example", "--prune-cache"]) == 2
        assert "--prune-cache requires --cache-dir" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-0.1", "0.5", "1.0"])
    def test_precision_out_of_range_rejected(self, capsys, value):
        assert runner_main(["fig50_51_mc", "--precision", value]) == 2
        assert "--precision must be in (0, 0.5)" in capsys.readouterr().err

    def test_max_instances_requires_precision(self, capsys):
        assert runner_main(["fig50_51_mc", "--max-instances", "100"]) == 2
        assert "--max-instances requires --precision" in capsys.readouterr().err

    def test_max_instances_below_one_rejected(self, capsys):
        argv = ["fig50_51_mc", "--precision", "0.02", "--max-instances", "0"]
        assert runner_main(argv) == 2
        assert "--max-instances must be >= 1" in capsys.readouterr().err

    def test_precision_threads_into_adaptive_experiments(self, capsys, monkeypatch):
        from repro.experiments import registry as live_registry
        from repro.experiments.base import ExperimentResult as Result

        received = {}

        def fake_adaptive(seed=None, precision=None, max_instances=None):
            received["precision"] = precision
            received["max_instances"] = max_instances
            return Result("fake_adaptive", "t", {"p": precision}, "report " + "x" * 40)

        monkeypatch.setitem(live_registry, "fake_adaptive", fake_adaptive)
        argv = ["fake_adaptive", "--precision", "0.05", "--max-instances", "256"]
        assert runner_main(argv) == 0
        assert received == {"precision": 0.05, "max_instances": 256}

    def test_precision_ignored_by_fixed_experiments_with_a_note(self, capsys):
        assert runner_main(["design_example", "--precision", "0.02"]) == 0
        captured = capsys.readouterr()
        assert "--precision only reaches the Monte-Carlo experiments" in captured.err
        assert "ignored by: design_example" in captured.err

    def test_monte_carlo_experiments_declare_adaptive_support(self):
        from repro.experiments.base import accepts_adaptive

        for experiment_id in ("fig15", "fig15_mc", "fig50_51_mc"):
            assert accepts_adaptive(experiment_id), experiment_id
        for experiment_id in ("table5", "design_example", "fig19"):
            assert not accepts_adaptive(experiment_id), experiment_id


class TestAdaptiveExperiments:
    """The --precision mode of the three Monte-Carlo experiments."""

    def test_fig50_51_mc_adaptive_reports_confidence_columns(self):
        result = run_experiment(
            "fig50_51_mc", precision=0.05, max_instances=192
        )
        assert "95 % CI" in result.report
        assert "adaptive to +/- 0.05" in result.report
        entry = result.data["proposed"]["fast"][200.0]
        assert entry["samples"] <= 192
        assert entry["stop_reason"] in {"precision", "max_samples"}
        assert entry["ci_lower"] <= entry["linearity_yield"] <= entry["ci_upper"]

    def test_fig50_51_mc_rejects_cap_without_precision(self):
        with pytest.raises(ValueError, match="only meaningful with a precision"):
            run_experiment("fig50_51_mc", max_instances=100)
        from repro.experiments import figure15, figure15_mc

        with pytest.raises(ValueError, match="only meaningful with a precision"):
            figure15.run(max_instances=100)
        with pytest.raises(ValueError, match="only meaningful with a precision"):
            figure15_mc.run(max_instances=100)

    def test_fig15_mc_adaptive_cell_payload(self):
        from repro.experiments import figure15_mc

        payload = figure15_mc.run_cell(
            {
                "scheme": "proposed",
                "corner": "fast",
                "frequency_mhz": 100.0,
                "load": "constant",
                "seed": 2012,
                "precision": 0.05,
                "max_instances": 128,
            }
        )
        assert payload["samples"] <= 128
        assert payload["ci_lower"] <= payload["closed_loop_yield"]
        assert payload["closed_loop_yield"] <= payload["ci_upper"]
        assert payload["mean_limit_cycle_amplitude_v"] >= 0.0

    def test_fig15_adaptive_sections_report_samples(self):
        result = run_experiment("fig15", precision=0.1, max_instances=64)
        assert "Samples drawn (adaptive)" in result.report
        for section in ("monte_carlo", "silicon_monte_carlo"):
            entry = result.data[section]
            assert entry["samples"] <= 64
            assert entry["stop_reason"] in {"precision", "max_samples"}
        # The deterministic architecture comparison is untouched.
        assert set(result.data["architectures"]) == {
            "ideal 6-bit",
            "calibrated proposed",
            "calibrated conventional",
        }

    def test_adaptive_cells_cache_independently_of_fixed_cells(self, tmp_path):
        from repro.sweep import SweepConfig, SweepOrchestrator

        with SweepOrchestrator(
            SweepConfig(cache_dir=tmp_path / "cache")
        ) as sweep:
            run_experiment(
                "fig50_51_mc", sweep=sweep, precision=0.05, max_instances=192
            )
            cold_misses = sweep.misses
            assert cold_misses > 0 and sweep.hits == 0
            # Warm adaptive re-run: every adaptive cell hits.
            run_experiment(
                "fig50_51_mc", sweep=sweep, precision=0.05, max_instances=192
            )
            assert sweep.hits == cold_misses
            # A different precision is a different cache key.
            run_experiment(
                "fig50_51_mc", sweep=sweep, precision=0.06, max_instances=192
            )
            assert sweep.misses == 2 * cold_misses

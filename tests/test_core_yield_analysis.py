"""Tests for the statistical sizing analysis (paper future work, section 5.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter.buck import BuckParameters
from repro.core.design import DesignSpec, design_proposed
from repro.core.yield_analysis import (
    ComponentVariation,
    YieldModel,
    adaptive_closed_loop_yield,
    adaptive_linearity_yield,
    adaptive_regulation_yield,
    cells_for_yield,
    coverage_yield,
    linearity_yield,
    yield_curve,
)
from repro.technology.corners import OperatingConditions
from repro.technology.variation import VariationModel


class TestYieldModel:
    def test_sample_shape_and_positivity(self):
        model = YieldModel(seed=1)
        delays = model.sample_chip_buffer_delays(40.0, num_buffers=32, num_chips=10)
        assert delays.shape == (10, 32)
        assert np.all(delays > 0)

    def test_zero_sigma_gives_typical_delay(self):
        model = YieldModel(global_sigma=0.0, mismatch_sigma=0.0)
        delays = model.sample_chip_buffer_delays(40.0, 16, 4)
        assert np.allclose(delays, 40.0)

    def test_global_sigma_spans_the_corner_spread(self):
        # +/- 3 sigma of the default global spread should reach roughly the
        # paper's fast (0.5x) and slow (2x) corners.
        model = YieldModel()
        three_sigma = np.exp(3 * model.global_sigma)
        assert 1.8 < three_sigma < 2.3

    def test_validation(self):
        with pytest.raises(ValueError):
            YieldModel(global_sigma=-0.1)
        model = YieldModel()
        with pytest.raises(ValueError):
            model.sample_chip_buffer_delays(0.0, 1, 1)
        with pytest.raises(ValueError):
            model.sample_chip_buffer_delays(40.0, 0, 1)


class TestCoverageYield:
    def test_worst_case_design_yields_everything(self, spec_100mhz_6bit, library):
        design = design_proposed(spec_100mhz_6bit, library)
        result = coverage_yield(
            num_cells=design.num_cells,
            buffers_per_cell=design.buffers_per_cell,
            clock_period_ps=spec_100mhz_6bit.clock_period_ps,
            num_chips=500,
            library=library,
        )
        assert result > 0.999

    def test_nominal_design_yields_about_half(self, library):
        # A line sized exactly for the typical corner covers the period on
        # roughly half of the chips (the global spread is symmetric in log).
        result = coverage_yield(
            num_cells=125,
            buffers_per_cell=2,
            clock_period_ps=10_000.0,
            num_chips=4000,
            library=library,
        )
        assert 0.35 < result < 0.65

    def test_yield_is_monotonic_in_cell_count(self, library):
        yields = [
            coverage_yield(
                num_cells=cells,
                buffers_per_cell=2,
                clock_period_ps=10_000.0,
                num_chips=1500,
                library=library,
            )
            for cells in (100, 140, 180, 256)
        ]
        assert yields == sorted(yields)
        assert yields[0] < 0.2
        assert yields[-1] > 0.99

    def test_validation(self, library):
        with pytest.raises(ValueError):
            coverage_yield(0, 2, 10_000.0, library=library)
        with pytest.raises(ValueError):
            coverage_yield(10, 2, -1.0, library=library)


class TestYieldCurveAndSizing:
    def test_curve_spans_nominal_to_worst_case(self, spec_100mhz_6bit, library):
        points = yield_curve(
            spec_100mhz_6bit, buffers_per_cell=2, num_chips=800, library=library
        )
        assert points[0].num_cells <= 130
        assert points[-1].num_cells >= 240
        yields = [point.locking_yield for point in points]
        assert yields == sorted(yields)
        areas = [point.line_area_um2 for point in points]
        assert areas == sorted(areas)

    def test_cells_for_yield_trades_area_for_yield(self, spec_100mhz_6bit, library):
        relaxed = cells_for_yield(
            spec_100mhz_6bit,
            buffers_per_cell=2,
            target_yield=0.9,
            num_chips=1500,
            library=library,
        )
        strict = cells_for_yield(
            spec_100mhz_6bit,
            buffers_per_cell=2,
            target_yield=0.999,
            num_chips=1500,
            library=library,
        )
        assert relaxed.num_cells < strict.num_cells
        assert relaxed.locking_yield >= 0.9
        assert strict.locking_yield >= 0.999
        # The statistical sizing saves cells relative to the worst-case 256.
        assert relaxed.num_cells < 256

    def test_cells_for_yield_validation(self, spec_100mhz_6bit, library):
        with pytest.raises(ValueError):
            cells_for_yield(spec_100mhz_6bit, 2, target_yield=0.0, library=library)


class TestComponentVariationSampleInstances:
    """The chunk-stable electrical draw behind the adaptive engines."""

    @given(
        split=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunks_tile_the_one_shot_fleet(self, split, seed):
        variation = ComponentVariation(seed=seed)
        nominal = BuckParameters()
        whole = variation.sample_instances(nominal, 16)
        head = variation.sample_instances(nominal, split)
        tail = variation.sample_instances(nominal, 16 - split, first_instance=split)
        for name in (
            "input_voltage_v",
            "inductance_h",
            "capacitance_f",
            "switching_frequency_hz",
            "switch_resistance_ohm",
            "inductor_resistance_ohm",
        ):
            assert np.array_equal(
                getattr(whole, name),
                np.concatenate([getattr(head, name), getattr(tail, name)]),
            ), name

    def test_stream_differs_from_the_fixed_batch_stream(self):
        # sample_batch's one-generator stream and the per-instance streams
        # are different populations of the same distribution -- by design:
        # changing sample_batch would break the fixed-N baselines.
        variation = ComponentVariation(seed=7)
        nominal = BuckParameters()
        batch = variation.sample_batch(nominal, 8)
        instances = variation.sample_instances(nominal, 8)
        assert not np.array_equal(batch.inductance_h, instances.inductance_h)
        assert not np.array_equal(batch.input_voltage_v, instances.input_voltage_v)

    def test_decorrelated_from_silicon_variation_streams(self):
        # The same seed drives both the silicon mismatch and the component
        # spread in a closed-loop cell; the stream tag must keep the first
        # draws of each from being bit-equal copies of one another.
        from repro.technology.variation import VariationModel

        seed = 11
        silicon = VariationModel(seed=seed).sample(4, 2, instance=0).multipliers
        components = ComponentVariation(seed=seed).sample_instances(
            BuckParameters(), 1
        )
        assert not np.isclose(
            float(silicon[0, 0]),
            float(components.input_voltage_v[0] / BuckParameters().input_voltage_v),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentVariation().sample_instances(BuckParameters(), 0)


class TestAdaptiveLinearityYield:
    def test_high_yield_cell_stops_early_and_brackets_the_fixed_estimate(
        self, spec_100mhz_6bit, library
    ):
        conditions = OperatingConditions.fast()
        variation = VariationModel(random_sigma=0.04, gradient_peak=0.015, seed=5)
        adaptive = adaptive_linearity_yield(
            "proposed",
            spec_100mhz_6bit,
            conditions,
            variation=variation,
            precision=0.02,
            max_instances=1000,
            error_limit_fraction=0.045,
            library=library,
        )
        assert adaptive.stop_reason == "precision"
        assert adaptive.samples < 250  # >= 4x below the fixed 1000 budget
        assert adaptive.half_width <= 0.02
        fixed = linearity_yield(
            "proposed",
            spec_100mhz_6bit,
            conditions,
            variation=variation,
            num_instances=adaptive.samples,
            error_limit_fraction=0.045,
            library=library,
        )
        # Same per-instance streams: the adaptive run IS the first
        # `samples` instances of the fixed run.
        assert adaptive.yield_estimate == fixed.linearity_yield
        assert adaptive.spec_yields["lock"] == fixed.lock_yield

    @given(chunk_size=st.integers(min_value=7, max_value=96))
    @settings(max_examples=8, deadline=None)
    def test_chunk_size_never_changes_the_estimate(
        self, chunk_size, spec_100mhz_6bit, library
    ):
        kwargs = dict(
            spec=spec_100mhz_6bit,
            conditions=OperatingConditions.fast(),
            variation=VariationModel(seed=3),
            precision=0.0,  # disable early stopping: always run to the cap
            max_instances=96,
            error_limit_fraction=0.045,
            library=library,
        )
        reference = adaptive_linearity_yield(
            "proposed", chunk_size=96, **kwargs
        )
        chunked = adaptive_linearity_yield(
            "proposed", chunk_size=chunk_size, **kwargs
        )
        assert chunked.samples == reference.samples == 96
        assert chunked.yield_estimate == reference.yield_estimate
        assert chunked.spec_yields == reference.spec_yields
        for name, stats in reference.value_stats.items():
            assert chunked.value_stats[name]["min"] == stats["min"]
            assert chunked.value_stats[name]["max"] == stats["max"]
            assert chunked.value_stats[name]["mean"] == pytest.approx(
                stats["mean"], rel=1e-12
            )

    def test_collapsed_cell_exhausts_its_cap(self, spec_100mhz_6bit, library):
        # The conventional slow-corner lock collapse: yield pinned near 0,
        # but a sliver of locking instances keeps the CI from collapsing
        # faster than the precision target.
        adaptive = adaptive_linearity_yield(
            "conventional",
            spec_100mhz_6bit,
            OperatingConditions.slow(),
            variation=VariationModel(seed=3),
            precision=0.001,
            max_instances=192,
            chunk_size=64,
            library=library,
        )
        assert adaptive.stop_reason == "max_samples"
        assert adaptive.samples == 192
        assert adaptive.yield_estimate < 0.2


class TestAdaptiveClosedLoopYield:
    def test_composed_specs_and_streaming_amplitudes(self, library):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=5)
        adaptive = adaptive_closed_loop_yield(
            "proposed",
            spec,
            OperatingConditions.typical(),
            variation=VariationModel(seed=9),
            component_variation=ComponentVariation(seed=9),
            precision=0.05,
            max_instances=128,
            chunk_size=32,
            periods=150,
            library=library,
        )
        assert set(adaptive.spec_yields) == {
            "closed_loop",
            "linearity",
            "regulation",
            "lock",
        }
        # The composed yield can never beat its component specs.
        assert adaptive.yield_estimate <= adaptive.spec_yields["linearity"]
        assert adaptive.yield_estimate <= adaptive.spec_yields["regulation"]
        amplitude = adaptive.value_stats["limit_cycle_amplitude_v"]
        assert 0.0 <= amplitude["min"] <= amplitude["mean"] <= amplitude["max"]
        assert amplitude["count"] == adaptive.samples

    def test_chunked_equals_one_shot(self, library):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=5)
        kwargs = dict(
            conditions=OperatingConditions.typical(),
            variation=VariationModel(seed=2),
            component_variation=ComponentVariation(seed=2),
            precision=0.0,
            max_instances=48,
            periods=120,
            library=library,
        )
        one_shot = adaptive_closed_loop_yield(
            "proposed", spec, chunk_size=48, **kwargs
        )
        chunked = adaptive_closed_loop_yield(
            "proposed", spec, chunk_size=13, **kwargs
        )
        assert chunked.yield_estimate == one_shot.yield_estimate
        assert chunked.spec_yields == one_shot.spec_yields
        assert chunked.value_stats["error_v"]["max"] == (
            one_shot.value_stats["error_v"]["max"]
        )


class TestAdaptiveRegulationYield:
    def test_matches_regulation_spec_semantics(self):
        adaptive = adaptive_regulation_yield(
            BuckParameters(),
            reference_v=0.9,
            variation=ComponentVariation(seed=4),
            precision=0.05,
            max_instances=128,
            chunk_size=32,
            periods=150,
        )
        assert adaptive.scheme is None
        assert 0.0 <= adaptive.yield_estimate <= 1.0
        assert adaptive.lower <= adaptive.yield_estimate <= adaptive.upper
        assert adaptive.value_stats["error_v"]["max"] >= 0.0

    def test_result_is_json_scalar_only(self):
        # The sweep cache stores cell payloads as canonical JSON; the
        # adaptive result must survive the round trip unchanged.
        import dataclasses
        import json

        adaptive = adaptive_regulation_yield(
            BuckParameters(),
            reference_v=0.9,
            variation=ComponentVariation(seed=4),
            precision=0.2,
            max_instances=32,
            chunk_size=32,
            periods=100,
        )
        canonical = json.loads(json.dumps(dataclasses.asdict(adaptive)))
        assert json.loads(json.dumps(canonical)) == canonical

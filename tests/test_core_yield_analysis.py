"""Tests for the statistical sizing analysis (paper future work, section 5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import DesignSpec, design_proposed
from repro.core.yield_analysis import (
    YieldModel,
    cells_for_yield,
    coverage_yield,
    yield_curve,
)


class TestYieldModel:
    def test_sample_shape_and_positivity(self):
        model = YieldModel(seed=1)
        delays = model.sample_chip_buffer_delays(40.0, num_buffers=32, num_chips=10)
        assert delays.shape == (10, 32)
        assert np.all(delays > 0)

    def test_zero_sigma_gives_typical_delay(self):
        model = YieldModel(global_sigma=0.0, mismatch_sigma=0.0)
        delays = model.sample_chip_buffer_delays(40.0, 16, 4)
        assert np.allclose(delays, 40.0)

    def test_global_sigma_spans_the_corner_spread(self):
        # +/- 3 sigma of the default global spread should reach roughly the
        # paper's fast (0.5x) and slow (2x) corners.
        model = YieldModel()
        three_sigma = np.exp(3 * model.global_sigma)
        assert 1.8 < three_sigma < 2.3

    def test_validation(self):
        with pytest.raises(ValueError):
            YieldModel(global_sigma=-0.1)
        model = YieldModel()
        with pytest.raises(ValueError):
            model.sample_chip_buffer_delays(0.0, 1, 1)
        with pytest.raises(ValueError):
            model.sample_chip_buffer_delays(40.0, 0, 1)


class TestCoverageYield:
    def test_worst_case_design_yields_everything(self, spec_100mhz_6bit, library):
        design = design_proposed(spec_100mhz_6bit, library)
        result = coverage_yield(
            num_cells=design.num_cells,
            buffers_per_cell=design.buffers_per_cell,
            clock_period_ps=spec_100mhz_6bit.clock_period_ps,
            num_chips=500,
            library=library,
        )
        assert result > 0.999

    def test_nominal_design_yields_about_half(self, library):
        # A line sized exactly for the typical corner covers the period on
        # roughly half of the chips (the global spread is symmetric in log).
        result = coverage_yield(
            num_cells=125,
            buffers_per_cell=2,
            clock_period_ps=10_000.0,
            num_chips=4000,
            library=library,
        )
        assert 0.35 < result < 0.65

    def test_yield_is_monotonic_in_cell_count(self, library):
        yields = [
            coverage_yield(
                num_cells=cells,
                buffers_per_cell=2,
                clock_period_ps=10_000.0,
                num_chips=1500,
                library=library,
            )
            for cells in (100, 140, 180, 256)
        ]
        assert yields == sorted(yields)
        assert yields[0] < 0.2
        assert yields[-1] > 0.99

    def test_validation(self, library):
        with pytest.raises(ValueError):
            coverage_yield(0, 2, 10_000.0, library=library)
        with pytest.raises(ValueError):
            coverage_yield(10, 2, -1.0, library=library)


class TestYieldCurveAndSizing:
    def test_curve_spans_nominal_to_worst_case(self, spec_100mhz_6bit, library):
        points = yield_curve(
            spec_100mhz_6bit, buffers_per_cell=2, num_chips=800, library=library
        )
        assert points[0].num_cells <= 130
        assert points[-1].num_cells >= 240
        yields = [point.locking_yield for point in points]
        assert yields == sorted(yields)
        areas = [point.line_area_um2 for point in points]
        assert areas == sorted(areas)

    def test_cells_for_yield_trades_area_for_yield(self, spec_100mhz_6bit, library):
        relaxed = cells_for_yield(
            spec_100mhz_6bit,
            buffers_per_cell=2,
            target_yield=0.9,
            num_chips=1500,
            library=library,
        )
        strict = cells_for_yield(
            spec_100mhz_6bit,
            buffers_per_cell=2,
            target_yield=0.999,
            num_chips=1500,
            library=library,
        )
        assert relaxed.num_cells < strict.num_cells
        assert relaxed.locking_yield >= 0.9
        assert strict.locking_yield >= 0.999
        # The statistical sizing saves cells relative to the worst-case 256.
        assert relaxed.num_cells < 256

    def test_cells_for_yield_validation(self, spec_100mhz_6bit, library):
        with pytest.raises(ValueError):
            cells_for_yield(spec_100mhz_6bit, 2, target_yield=0.0, library=library)

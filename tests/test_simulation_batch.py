"""Tests for the vectorized batch simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter.adc import WindowedADC
from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck, IdealDPWM
from repro.converter.load import (
    ConstantLoad,
    LineTransient,
    PulseTrainLoad,
    RampLoad,
    RandomBurstLoad,
    ReferenceStep,
    SteppedLoad,
)
from repro.core.yield_analysis import ComponentVariation, regulation_yield
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.simulation.batch import (
    BatchBuckParameters,
    BatchClosedLoop,
    BatchCompensator,
    BatchQuantizer,
    from_closed_loops,
)
from repro.technology.corners import OperatingConditions


@pytest.fixture(scope="module")
def nominal():
    return BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)


class TestBatchBuckParameters:
    def test_broadcasts_scalars(self, nominal):
        batch = BatchBuckParameters(
            input_voltage_v=1.8,
            inductance_h=np.array([90e-9, 100e-9, 110e-9]),
            capacitance_f=100e-9,
            switching_frequency_hz=100e6,
            switch_resistance_ohm=0.02,
            inductor_resistance_ohm=0.01,
        )
        assert batch.num_variants == 3
        assert batch.input_voltage_v.shape == (3,)

    def test_round_trips_scalar_parameters(self, nominal):
        batch = BatchBuckParameters.from_parameters([nominal, nominal])
        assert batch.num_variants == 2
        assert batch.variant(1) == nominal

    def test_uniform(self, nominal):
        batch = BatchBuckParameters.uniform(nominal, 5)
        assert batch.num_variants == 5
        assert batch.variant(3) == nominal

    def test_validation(self, nominal):
        with pytest.raises(ValueError):
            BatchBuckParameters.uniform(nominal, 0)
        with pytest.raises(ValueError):
            BatchBuckParameters(
                input_voltage_v=-1.0,
                inductance_h=100e-9,
                capacitance_f=100e-9,
                switching_frequency_hz=100e6,
                switch_resistance_ohm=0.02,
                inductor_resistance_ohm=0.01,
            )
        with pytest.raises(ValueError):
            BatchBuckParameters(
                input_voltage_v=np.array([1.8, 1.8]),
                inductance_h=np.array([1e-9, 1e-9, 1e-9]),
                capacitance_f=100e-9,
                switching_frequency_hz=100e6,
                switch_resistance_ohm=0.02,
                inductor_resistance_ohm=0.01,
            )


class TestBatchQuantizer:
    def test_ideal_matches_scalar_dpwm(self):
        scalar = IdealDPWM(bits=6)
        batch = BatchQuantizer.ideal(6, num_variants=1)
        commands = np.linspace(0.0, 1.0, 257)
        for command in commands:
            words, duties = batch.quantize(np.array([command]))
            assert words[0] == scalar.duty_word_for(float(command))
            assert duties[0] == pytest.approx(scalar.duty_fraction(int(words[0])))

    def test_from_quantizers_mixed_resolutions(self):
        quantizers = [IdealDPWM(bits=4), IdealDPWM(bits=6)]
        batch = BatchQuantizer.from_quantizers(quantizers)
        assert batch.num_variants == 2
        assert batch.max_word.tolist() == [15, 63]
        words, duties = batch.quantize(np.array([0.37, 0.37]))
        assert words.tolist() == [
            quantizers[0].duty_word_for(0.37),
            quantizers[1].duty_word_for(0.37),
        ]
        assert duties[0] == pytest.approx(quantizers[0].duty_fraction(int(words[0])))
        assert duties[1] == pytest.approx(quantizers[1].duty_fraction(int(words[1])))

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchQuantizer(np.array([[0.0, 2.0]]))
        with pytest.raises(ValueError):
            BatchQuantizer.from_quantizers([])
        with pytest.raises(ValueError):
            BatchQuantizer.ideal(0, 4)

    def test_command_count_mismatch_rejected(self):
        quantizer = BatchQuantizer.ideal(6, 4)
        with pytest.raises(ValueError, match="one duty command per variant"):
            quantizer.quantize(np.array([0.5, 0.5]))
        # A single shared table still broadcasts over any command count,
        # including a bare scalar.
        words, duties = BatchQuantizer.ideal(6, 1).quantize(np.full(5, 0.5))
        assert words.shape == (5,)
        words, duties = BatchQuantizer.ideal(6, 1).quantize(0.5)
        assert words.shape == (1,)


class TestBatchCompensator:
    def test_matches_scalar_pid(self):
        from repro.converter.compensator import PIDCompensator

        scalar = PIDCompensator(kp=0.002, ki=1e-4, kd=5e-4, initial_duty=0.5)
        batch = BatchCompensator(
            1, kp=0.002, ki=1e-4, kd=5e-4, initial_duty=0.5
        )
        rng = np.random.default_rng(11)
        for code in rng.integers(-15, 16, size=200):
            expected = scalar.update(int(code))
            got = batch.update(np.array([code]))
            assert got[0] == pytest.approx(expected, abs=1e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchCompensator(2, min_duty=0.9, max_duty=0.5)
        with pytest.raises(ValueError):
            BatchCompensator(2, initial_duty=1.5)


class TestBatchClosedLoop:
    def test_reproduces_scalar_loops_exactly(self, nominal):
        """The core contract: batch == scalar exact loop, decision for decision."""
        references = [0.6, 0.9, 1.2]
        loops = [
            DigitallyControlledBuck(nominal, IdealDPWM(bits=6), reference_v=ref)
            for ref in references
        ]
        batch = from_closed_loops(loops)
        batch_result = batch.run(400)
        for column, loop in enumerate(loops):
            trace = loop.run(400)
            np.testing.assert_array_equal(
                np.asarray(trace.duty_words), batch_result.duty_words[:, column]
            )
            np.testing.assert_array_equal(
                np.asarray(trace.error_codes), batch_result.error_codes[:, column]
            )
            np.testing.assert_allclose(
                np.asarray(trace.output_voltages_v),
                batch_result.output_voltages_v[:, column],
                rtol=0.0,
                atol=0.0,
            )

    def test_reproduces_scalar_loop_with_calibrated_dpwm(
        self, nominal, proposed_design, library
    ):
        line = proposed_design.build_line(library=library)
        dpwm = CalibratedDelayLineDPWM(line, OperatingConditions.typical())
        scalar = DigitallyControlledBuck(nominal, dpwm, reference_v=0.9)
        batch = from_closed_loops([scalar])
        batch_result = batch.run(300)
        trace = scalar.run(300)
        np.testing.assert_array_equal(
            np.asarray(trace.duty_words), batch_result.duty_words[:, 0]
        )
        np.testing.assert_allclose(
            np.asarray(trace.output_voltages_v),
            batch_result.output_voltages_v[:, 0],
            rtol=0.0,
            atol=0.0,
        )

    def test_reproduces_scalar_loop_under_stepped_load(self, nominal):
        load = SteppedLoad(light_ohm=2.0, heavy_ohm=0.9, step_up_period=100)
        scalar = DigitallyControlledBuck(
            nominal, IdealDPWM(bits=6), reference_v=0.9, load=load
        )
        batch = from_closed_loops([scalar])
        np.testing.assert_allclose(
            np.asarray(scalar.run(300).output_voltages_v),
            batch.run(300).output_voltages_v[:, 0],
            rtol=0.0,
            atol=0.0,
        )

    def test_regulates_all_variants(self, nominal):
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 16),
            BatchQuantizer.ideal(8, 16),
            reference_v=0.9,
        )
        result = batch.run(500)
        np.testing.assert_allclose(
            result.steady_state_voltage_v(), np.full(16, 0.9), atol=0.02
        )

    def test_per_variant_references(self, nominal):
        references = np.array([0.6, 0.9, 1.2])
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 3),
            BatchQuantizer.ideal(8, 3),
            reference_v=references,
        )
        result = batch.run(500)
        np.testing.assert_allclose(
            result.steady_state_voltage_v(), references, atol=0.03
        )

    def test_per_variant_loads(self, nominal):
        loads = [ConstantLoad(2.0), SteppedLoad(2.0, 0.9, step_up_period=100)]
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 2),
            BatchQuantizer.ideal(8, 2),
            reference_v=0.9,
            loads=loads,
        )
        result = batch.run(300)
        assert result.load_resistances_ohm[200, 0] == 2.0
        assert result.load_resistances_ohm[200, 1] == 0.9
        # Both recover to the reference regardless of the load history.
        np.testing.assert_allclose(
            result.steady_state_voltage_v(), [0.9, 0.9], atol=0.03
        )

    def test_equal_profiles_on_distinct_objects_accepted(self, nominal):
        # Frozen-dataclass profiles compare by value, so per-loop instances
        # with the same parameters lift into one batch.
        loops = [
            DigitallyControlledBuck(
                nominal,
                IdealDPWM(bits=6),
                reference_v=0.9,
                reference_profile=ReferenceStep(0.9, 1.1, step_period=200),
            )
            for _ in range(3)
        ]
        result = from_closed_loops(loops).run(400)
        assert result.output_voltages_v[-50:].mean() == pytest.approx(1.1, abs=0.03)

    def test_start_at_reference_follows_profile_initial_value(self, nominal):
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 2),
            BatchQuantizer.ideal(8, 2),
            reference_v=0.9,
            reference_profile=ReferenceStep(0.6, 0.9, step_period=200),
        )
        np.testing.assert_allclose(batch.output_voltage_v, 0.6)
        result = batch.run(150)
        # No artificial transient: the loop holds the profile's initial value.
        np.testing.assert_allclose(
            result.output_voltages_v[100:150].mean(axis=0), [0.6, 0.6], atol=0.02
        )

    def test_scenarios_reference_step_and_line_transient(self, nominal):
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 4),
            BatchQuantizer.ideal(8, 4),
            reference_v=0.9,
            reference_profile=ReferenceStep(0.9, 1.1, step_period=250),
            source_profile=LineTransient(1.8, 1.6, start_period=400, end_period=500),
        )
        result = batch.run(700)
        voltages = result.output_voltages_v
        assert voltages[200:250].mean() == pytest.approx(0.9, abs=0.03)
        assert voltages[-50:].mean() == pytest.approx(1.1, abs=0.03)

    def test_ramp_pulse_and_burst_loads_run(self, nominal):
        for load in (
            RampLoad(2.0, 1.0, ramp_start_period=50, ramp_end_period=150),
            PulseTrainLoad(2.0, 0.8, pulse_periods=20, train_period=80),
            RandomBurstLoad(2.0, 0.8, seed=3),
        ):
            batch = BatchClosedLoop(
                BatchBuckParameters.uniform(nominal, 3),
                BatchQuantizer.ideal(8, 3),
                reference_v=0.9,
                load=load,
            )
            result = batch.run(400)
            voltages = result.output_voltages_v
            assert np.all(np.isfinite(voltages))
            # Pulsed/bursty workloads keep the loop in perpetual transient,
            # so check boundedness and the long-run average, not the tail.
            assert voltages.min() > 0.3 and voltages.max() < 1.6
            np.testing.assert_allclose(
                voltages.mean(axis=0), np.full(3, 0.9), atol=0.1
            )

    def test_trace_extraction_matches_columns(self, nominal):
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 2),
            BatchQuantizer.ideal(6, 2),
            reference_v=0.9,
        )
        result = batch.run(50)
        trace = result.trace(1)
        assert len(trace) == 50
        np.testing.assert_allclose(
            trace.as_arrays()["vout_v"], result.output_voltages_v[:, 1]
        )
        assert trace.times_s[0] == pytest.approx(1e-8)

    def test_trace_round_trips_standalone_scalar_simulation(self, nominal):
        """result.trace(i) equals the standalone scalar run, field for field."""
        load = SteppedLoad(light_ohm=2.0, heavy_ohm=0.9, step_up_period=60)
        scalars = [
            DigitallyControlledBuck(
                nominal, IdealDPWM(bits=6), reference_v=ref, load=load
            )
            for ref in (0.7, 1.0)
        ]
        result = from_closed_loops(scalars).run(150)
        for column, loop in enumerate(scalars):
            expected = loop.run(150)
            trace = result.trace(column)
            assert trace.times_s == expected.times_s
            assert trace.output_voltages_v == expected.output_voltages_v
            assert trace.inductor_currents_a == expected.inductor_currents_a
            assert trace.duty_words == expected.duty_words
            assert trace.duty_fractions == expected.duty_fractions
            assert trace.error_codes == expected.error_codes
            assert trace.load_resistances_ohm == expected.load_resistances_ohm

    def test_static_load_evaluated_once_per_run(self, nominal):
        """Static loads resolve to one resistance vector, not one per period."""

        class CountingLoad:
            def __init__(self, resistance_ohm, static):
                self.resistance_ohm = resistance_ohm
                self.calls = 0
                if static:
                    self.is_static = True

            def resistance_at(self, period_index):
                self.calls += 1
                return self.resistance_ohm

        static = CountingLoad(2.0, static=True)
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 3),
            BatchQuantizer.ideal(6, 3),
            reference_v=0.9,
            load=static,
        )
        result = batch.run(200)
        assert static.calls == 1  # the construction-time evaluation is reused

        # The fast path changes bookkeeping only, not the physics.
        reference = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 3),
            BatchQuantizer.ideal(6, 3),
            reference_v=0.9,
            load=ConstantLoad(2.0),
        )
        np.testing.assert_array_equal(
            result.output_voltages_v, reference.run(200).output_voltages_v
        )

        # Loads that do not declare themselves static keep the per-period
        # evaluation (their resistance may depend on the period index).
        dynamic = CountingLoad(2.0, static=False)
        BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 3),
            BatchQuantizer.ideal(6, 3),
            reference_v=0.9,
            load=dynamic,
        ).run(200)
        assert dynamic.calls == 201  # construction + one per period

    def test_empty_result_statistics_raise(self, nominal):
        batch = BatchClosedLoop(
            BatchBuckParameters.uniform(nominal, 2),
            BatchQuantizer.ideal(6, 2),
            reference_v=0.9,
        )
        with pytest.raises(ValueError):
            batch.run(0)

    def test_validation(self, nominal):
        params = BatchBuckParameters.uniform(nominal, 2)
        quantizer = BatchQuantizer.ideal(6, 2)
        with pytest.raises(ValueError):
            BatchClosedLoop(params, quantizer, reference_v=2.5)
        with pytest.raises(ValueError):
            BatchClosedLoop(params, BatchQuantizer.ideal(6, 3), reference_v=0.9)
        with pytest.raises(ValueError, match="compensator covers"):
            BatchClosedLoop(
                params, quantizer, reference_v=0.9, compensator=BatchCompensator(3)
            )
        with pytest.raises(ValueError):
            BatchClosedLoop(
                params,
                quantizer,
                reference_v=0.9,
                load=ConstantLoad(1.0),
                loads=[ConstantLoad(1.0), ConstantLoad(2.0)],
            )
        with pytest.raises(ValueError):
            from_closed_loops([])

    def test_reference_profile_above_input_rejected(self, nominal):
        with pytest.raises(ValueError, match="reference profile"):
            BatchClosedLoop(
                BatchBuckParameters.uniform(nominal, 2),
                BatchQuantizer.ideal(6, 2),
                reference_v=0.9,
                reference_profile=ReferenceStep(0.9, 2.5, step_period=100),
            )
        # reference_v itself is validated even when a profile is supplied,
        # mirroring the scalar loop.
        with pytest.raises(ValueError, match="reference voltages"):
            BatchClosedLoop(
                BatchBuckParameters.uniform(nominal, 2),
                BatchQuantizer.ideal(6, 2),
                reference_v=-5.0,
                reference_profile=ReferenceStep(0.9, 1.1, step_period=100),
            )

    def test_nonpositive_load_rejected(self, nominal):
        class BrokenLoad:
            def resistance_at(self, period_index: int) -> float:
                return 0.0

        with pytest.raises(ValueError, match="load resistance must be positive"):
            BatchClosedLoop(
                BatchBuckParameters.uniform(nominal, 2),
                BatchQuantizer.ideal(6, 2),
                reference_v=0.9,
                load=BrokenLoad(),
            ).run(10)

    def test_euler_loops_rejected(self, nominal):
        # The batch engine only reproduces the exact stepper; silently
        # lifting an Euler loop would break the cross-validation contract.
        loops = [
            DigitallyControlledBuck(
                nominal, IdealDPWM(bits=6), reference_v=0.9, stepper="euler"
            )
        ]
        with pytest.raises(ValueError, match="Euler"):
            from_closed_loops(loops)

    def test_mismatched_adcs_rejected(self, nominal):
        loops = [
            DigitallyControlledBuck(
                nominal, IdealDPWM(bits=6), reference_v=0.9, adc=WindowedADC(lsb_v=lsb)
            )
            for lsb in (0.005, 0.01)
        ]
        with pytest.raises(ValueError, match="ADC"):
            from_closed_loops(loops)


class TestRegulationYield:
    def test_component_variation_sampling(self, nominal):
        variation = ComponentVariation(seed=9)
        batch = variation.sample_batch(nominal, 64)
        assert batch.num_variants == 64
        assert np.all(batch.inductance_h > 0)
        assert np.all(batch.switch_resistance_ohm >= 0)
        # Reproducible from the seed.
        again = ComponentVariation(seed=9).sample_batch(nominal, 64)
        np.testing.assert_array_equal(batch.inductance_h, again.inductance_h)

    def test_zero_sigma_reproduces_nominal(self, nominal):
        variation = ComponentVariation(
            inductance_sigma=0.0,
            capacitance_sigma=0.0,
            resistance_sigma=0.0,
            input_voltage_sigma=0.0,
        )
        batch = variation.sample_batch(nominal, 4)
        assert batch.variant(2) == nominal

    def test_regulation_yield_nominal_fleet(self, nominal):
        result = regulation_yield(
            nominal,
            reference_v=0.9,
            variation=ComponentVariation(seed=7),
            num_variants=64,
            periods=250,
            tolerance_v=0.02,
        )
        assert result.regulation_yield > 0.95
        assert result.steady_state_voltages_v.shape == (64,)
        assert result.worst_error_v < 0.05

    def test_regulation_yield_validation(self, nominal):
        with pytest.raises(ValueError):
            regulation_yield(nominal, reference_v=0.9, tolerance_v=0.0)
        with pytest.raises(ValueError):
            ComponentVariation(inductance_sigma=-0.1)

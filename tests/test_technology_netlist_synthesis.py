"""Tests for structural netlists and the area synthesizer."""

from __future__ import annotations

import pytest

from repro.technology.cells import CellKind
from repro.technology.netlist import CellInstanceGroup, Netlist
from repro.technology.synthesis import Synthesizer


class TestNetlist:
    def test_add_cells_accumulates_counts(self):
        block = Netlist(name="block")
        block.add_cells(CellKind.BUFFER, 10).add_cells(CellKind.BUFFER, 5)
        assert block.cell_counts()[CellKind.BUFFER] == 15

    def test_hierarchical_counts_include_children(self):
        child = Netlist(name="child").add_cells(CellKind.DFF, 4)
        parent = Netlist(name="parent").add_cells(CellKind.MUX2, 3).add_child(child)
        counts = parent.cell_counts()
        assert counts[CellKind.DFF] == 4
        assert counts[CellKind.MUX2] == 3
        assert parent.total_instances() == 7

    def test_flatten_produces_hierarchical_paths(self):
        child = Netlist(name="child").add_cells(CellKind.DFF, 1)
        parent = Netlist(name="parent").add_child(child)
        paths = [path for path, _ in parent.flatten()]
        assert paths == ["parent/child"]

    def test_find_locates_nested_block(self):
        inner = Netlist(name="inner").add_cells(CellKind.BUFFER, 1)
        middle = Netlist(name="middle").add_child(inner)
        top = Netlist(name="top").add_child(middle)
        assert top.find("inner") is inner
        assert top.find("top") is top

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            Netlist(name="top").find("ghost")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CellInstanceGroup(kind=CellKind.BUFFER, count=-1)


class TestSynthesizer:
    def _simple_design(self) -> Netlist:
        line = Netlist(name="Line").add_cells(CellKind.BUFFER, 100)
        controller = Netlist(name="Controller").add_cells(CellKind.DFF, 10)
        return Netlist(name="design").add_child(line).add_child(controller)

    def test_total_area_is_sum_of_cell_areas(self, library, synthesizer):
        report = synthesizer.synthesize(self._simple_design())
        expected = 100 * library.area(CellKind.BUFFER) + 10 * library.area(CellKind.DFF)
        assert report.total_area_um2 == pytest.approx(expected)

    def test_block_fractions_sum_to_one(self, synthesizer):
        report = synthesizer.synthesize(self._simple_design())
        assert sum(block.fraction for block in report.blocks) == pytest.approx(1.0)

    def test_distribution_percentages(self, synthesizer):
        report = synthesizer.synthesize(self._simple_design())
        distribution = report.distribution()
        assert set(distribution) == {"Line", "Controller"}
        assert sum(distribution.values()) == pytest.approx(100.0)

    def test_block_lookup(self, synthesizer):
        report = synthesizer.synthesize(self._simple_design())
        assert report.block("Line").instances == 100
        with pytest.raises(KeyError):
            report.block("Mapper")

    def test_top_level_cells_grouped_under_top(self, synthesizer):
        design = Netlist(name="design").add_cells(CellKind.BUFFER, 5)
        report = synthesizer.synthesize(design)
        assert report.blocks[0].name == "Top"
        assert report.total_instances == 5

    def test_leakage_and_capacitance_rollups(self, library, synthesizer):
        design = Netlist(name="design").add_cells(CellKind.DFF, 3)
        report = synthesizer.synthesize(design)
        assert report.total_leakage_nw == pytest.approx(
            3 * library.leakage_nw(CellKind.DFF)
        )
        assert report.total_switched_capacitance_ff == pytest.approx(
            3 * library.input_capacitance_ff(CellKind.DFF)
        )

    def test_utilization_inflates_reported_area(self, library):
        dense = Synthesizer(library=library, utilization=1.0)
        placed = Synthesizer(library=library, utilization=0.8)
        design = self._simple_design()
        assert placed.synthesize(design).total_area_um2 == pytest.approx(
            dense.synthesize(design).total_area_um2 / 0.8
        )

    def test_invalid_utilization_rejected(self, library):
        with pytest.raises(ValueError):
            Synthesizer(library=library, utilization=0.0)
        with pytest.raises(ValueError):
            Synthesizer(library=library, utilization=1.5)

    def test_format_contains_blocks_and_total(self, synthesizer):
        report = synthesizer.synthesize(self._simple_design())
        text = report.format()
        assert "Total area" in text
        assert "Line" in text
        assert "Controller" in text

    def test_empty_design_has_zero_area(self, synthesizer):
        report = synthesizer.synthesize(Netlist(name="empty"))
        assert report.total_area_um2 == 0.0
        assert report.total_instances == 0

"""Tests for delay elements and delay cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delay_cells import (
    DelayElement,
    FixedDelayCell,
    TunableDelayCell,
    thermometer_encode,
)
from repro.technology.corners import OperatingConditions


class TestThermometerEncode:
    @pytest.mark.parametrize(
        "level, width, expected",
        [(0, 3, 0b000), (1, 3, 0b001), (2, 3, 0b011), (3, 3, 0b111)],
    )
    def test_encoding(self, level, width, expected):
        assert thermometer_encode(level, width) == expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            thermometer_encode(4, 3)
        with pytest.raises(ValueError):
            thermometer_encode(-1, 3)


class TestDelayElement:
    def test_single_buffer_matches_library(self, library):
        element = DelayElement(buffers=1)
        assert element.delay_ps(OperatingConditions.fast(), library) == pytest.approx(20.0)
        assert element.delay_ps(OperatingConditions.slow(), library) == pytest.approx(80.0)

    def test_multiple_buffers_add_up(self, library):
        element = DelayElement(buffers=3)
        assert element.delay_ps(OperatingConditions.typical(), library) == pytest.approx(120.0)

    def test_mismatch_multipliers_applied(self, library):
        element = DelayElement(buffers=2)
        delay = element.delay_ps(
            OperatingConditions.typical(), library, buffer_multipliers=np.array([1.1, 0.9])
        )
        assert delay == pytest.approx(40.0 * 2.0)

    def test_wrong_multiplier_count_rejected(self, library):
        element = DelayElement(buffers=2)
        with pytest.raises(ValueError):
            element.delay_ps(
                OperatingConditions.typical(), library, buffer_multipliers=np.ones(3)
            )

    def test_zero_buffers_rejected(self):
        with pytest.raises(ValueError):
            DelayElement(buffers=0)


class TestFixedDelayCell:
    def test_delay_is_buffers_times_unit(self, library):
        cell = FixedDelayCell(buffers=2)
        assert cell.delay_ps(OperatingConditions.fast(), library) == pytest.approx(40.0)
        assert cell.buffer_count() == 2

    def test_corner_scaling_is_4x(self, library):
        cell = FixedDelayCell(buffers=4)
        fast = cell.delay_ps(OperatingConditions.fast(), library)
        slow = cell.delay_ps(OperatingConditions.slow(), library)
        assert slow / fast == pytest.approx(4.0)

    def test_invalid_buffers_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayCell(buffers=0)


class TestTunableDelayCell:
    def test_levels_map_to_element_counts(self):
        cell = TunableDelayCell(branches=4, buffers_per_element=2)
        assert [cell.elements_for_level(level) for level in range(4)] == [1, 2, 3, 4]

    def test_delay_grows_linearly_with_level(self, library):
        cell = TunableDelayCell(branches=4, buffers_per_element=2)
        conditions = OperatingConditions.typical()
        delays = [cell.delay_ps(level, conditions, library) for level in range(4)]
        assert delays == pytest.approx([80.0, 160.0, 240.0, 320.0])

    def test_adjustment_ratio_matches_branch_count(self, library):
        cell = TunableDelayCell(branches=4, buffers_per_element=1)
        conditions = OperatingConditions.typical()
        ratio = cell.max_delay_ps(conditions, library) / cell.min_delay_ps(
            conditions, library
        )
        assert ratio == pytest.approx(4.0)

    def test_slow_corner_minimum_equals_fast_corner_maximum(self, library):
        # The design intent behind the 1:4 adjustment ratio: the shortest
        # branch at the slow corner matches the longest branch at the fast
        # corner, so the line can always be tuned onto the clock period.
        cell = TunableDelayCell(branches=4, buffers_per_element=2)
        slow_min = cell.min_delay_ps(OperatingConditions.slow(), library)
        fast_max = cell.max_delay_ps(OperatingConditions.fast(), library)
        assert slow_min == pytest.approx(fast_max)

    def test_buffer_count_includes_all_branches(self):
        cell = TunableDelayCell(branches=4, buffers_per_element=2)
        # Branches of 1+2+3+4 elements, two buffers each.
        assert cell.buffer_count() == 20

    def test_control_bits(self):
        assert TunableDelayCell(branches=3).control_bits() == 2
        assert TunableDelayCell(branches=4).control_bits() == 3

    def test_level_out_of_range_rejected(self, library):
        cell = TunableDelayCell(branches=3)
        with pytest.raises(ValueError):
            cell.delay_ps(3, OperatingConditions.typical(), library)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            TunableDelayCell(branches=1)
        with pytest.raises(ValueError):
            TunableDelayCell(branches=4, buffers_per_element=0)

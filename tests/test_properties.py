"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    differential_nonlinearity,
    integral_nonlinearity,
    is_monotonic,
)
from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    ShiftRegisterController,
    TuningOrder,
)
from repro.core.mapper import MappingBlock
from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.simulation.waveform import WaveformTrace
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

LIBRARY = intel32_like_library()

power_of_two_cells = st.sampled_from([8, 16, 32, 64, 128, 256])
corners = st.sampled_from(list(ProcessCorner))


class TestMapperProperties:
    @given(
        num_cells=power_of_two_cells,
        word_fraction=st.floats(min_value=0.0, max_value=1.0),
        tap_fraction=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_mapping_is_bounded_and_scales_with_tap_sel(
        self, num_cells, word_fraction, tap_fraction
    ):
        mapper = MappingBlock(num_cells=num_cells)
        word = min(int(word_fraction * mapper.max_word), mapper.max_word)
        tap_sel = max(1, min(int(tap_fraction * num_cells), num_cells))
        mapped = mapper.map(word, tap_sel)
        assert 0 <= mapped <= num_cells - 1
        # Exact hardware identity: multiply then shift.
        assert mapped == min((word * tap_sel) >> (mapper.word_bits - 1), num_cells - 1)

    @given(num_cells=power_of_two_cells, tap_sel_fraction=st.floats(0.01, 1.0))
    def test_mapping_monotonic_in_word(self, num_cells, tap_sel_fraction):
        mapper = MappingBlock(num_cells=num_cells)
        tap_sel = max(1, min(int(tap_sel_fraction * num_cells), num_cells))
        previous = -1
        for word in range(0, mapper.max_word + 1, max(1, num_cells // 16)):
            mapped = mapper.map(word, tap_sel)
            assert mapped >= previous
            previous = mapped

    @given(num_cells=power_of_two_cells, word=st.integers(min_value=0, max_value=10_000))
    def test_mapping_monotonic_in_tap_sel(self, num_cells, word):
        mapper = MappingBlock(num_cells=num_cells)
        word = word % (mapper.max_word + 1)
        previous = -1
        for tap_sel in range(1, num_cells + 1, max(1, num_cells // 16)):
            mapped = mapper.map(word, tap_sel)
            assert mapped >= previous
            previous = mapped


class TestProposedLineProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_cells=st.sampled_from([32, 64, 128, 256]),
        buffers=st.integers(min_value=1, max_value=4),
        corner=corners,
        sigma=st.floats(min_value=0.0, max_value=0.08),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_tap_delays_strictly_increasing(self, num_cells, buffers, corner, sigma, seed):
        variation = VariationModel(random_sigma=sigma, gradient_peak=0.01, seed=seed)
        sample = variation.sample(num_cells, buffers)
        line = ProposedDelayLine(
            ProposedDelayLineConfig(
                num_cells=num_cells,
                buffers_per_cell=buffers,
                clock_period_ps=10_000.0,
            ),
            library=LIBRARY,
            variation=sample,
        )
        taps = line.tap_delays_ps(OperatingConditions(corner=corner))
        assert np.all(np.diff(taps) > 0)

    @settings(max_examples=25, deadline=None)
    @given(
        corner=corners,
        temperature=st.floats(min_value=-40.0, max_value=110.0),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_locking_brackets_half_period_whenever_line_is_long_enough(
        self, corner, temperature, seed
    ):
        variation = VariationModel(random_sigma=0.04, seed=seed)
        line = ProposedDelayLine(
            ProposedDelayLineConfig(
                num_cells=256, buffers_per_cell=2, clock_period_ps=10_000.0
            ),
            library=LIBRARY,
            variation=variation.sample(256, 2),
        )
        conditions = OperatingConditions(corner=corner, temperature_c=temperature)
        result = ProposedController(line).lock(conditions)
        assert result.locked
        taps = line.tap_delays_ps(conditions)
        half = 5_000.0
        locked_delay = taps[result.control_state - 1]
        next_delay = (
            taps[result.control_state]
            if result.control_state < 256
            else locked_delay
        )
        assert locked_delay <= half or result.control_state == 1
        assert next_delay > half or result.control_state == 256

    @settings(max_examples=20, deadline=None)
    @given(corner=corners, seed=st.integers(min_value=0, max_value=2**16))
    def test_calibrated_duty_error_bounded_by_a_few_cells(self, corner, seed):
        # Random mismatch only: a systematic placement gradient adds a bow
        # that single-point calibration cannot remove, which is studied
        # separately in the Figure 50-51 experiment.
        variation = VariationModel(random_sigma=0.03, gradient_peak=0.0, seed=seed)
        line = ProposedDelayLine(
            ProposedDelayLineConfig(
                num_cells=256, buffers_per_cell=2, clock_period_ps=10_000.0
            ),
            library=LIBRARY,
            variation=variation.sample(256, 2),
        )
        conditions = OperatingConditions(corner=corner)
        tap_sel = ProposedController(line).lock(conditions).control_state
        cell = float(line.cell_delays_ps(conditions).max())
        quantum = max(3.5 * cell / 10_000.0, 3.5 / (2 * tap_sel))
        for word in (16, 64, 128, 200, 255):
            achieved = line.achieved_duty(word, tap_sel, conditions)
            assert abs(achieved - word / 256) <= quantum


class TestConventionalLineProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.integers(min_value=0, max_value=192),
        order=st.sampled_from(list(TuningOrder)),
        corner=corners,
    )
    def test_levels_sum_matches_steps_and_delay_monotonic_in_steps(
        self, steps, order, corner
    ):
        line = ConventionalDelayLine(
            ConventionalDelayLineConfig(
                num_cells=64,
                branches=4,
                buffers_per_element=2,
                clock_period_ps=10_000.0,
                tuning_order=order,
            ),
            library=LIBRARY,
        )
        levels = line.levels_for_steps(steps)
        assert int(levels.sum()) == min(steps, 192)
        conditions = OperatingConditions(corner=corner)
        if steps < 192:
            shorter = line.total_delay_ps(levels, conditions)
            longer = line.total_delay_ps(line.levels_for_steps(steps + 1), conditions)
            assert longer > shorter

    @settings(max_examples=15, deadline=None)
    @given(order=st.sampled_from(list(TuningOrder)), corner=corners)
    def test_lock_never_exceeds_adjustment_range(self, order, corner):
        line = ConventionalDelayLine(
            ConventionalDelayLineConfig(
                num_cells=64,
                branches=4,
                buffers_per_element=2,
                clock_period_ps=10_000.0,
                tuning_order=order,
            ),
            library=LIBRARY,
        )
        result = ShiftRegisterController(line).lock(OperatingConditions(corner=corner))
        assert 0 <= result.control_state <= 192
        if result.locked:
            levels = line.levels_for_steps(result.control_state)
            taps = line.tap_delays_ps(levels, OperatingConditions(corner=corner))
            assert taps[-2] < 10_000.0 <= taps[-1]


class TestMetricProperties:
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=64,
        )
    )
    def test_cumulative_curves_are_monotonic_with_zero_negative_dnl_floor(self, steps):
        curve = np.cumsum(np.asarray(steps))
        assert is_monotonic(curve)
        dnl = differential_nonlinearity(curve)
        # For a strictly increasing curve, DNL can never reach -1.
        assert np.all(dnl > -1.0)

    @given(
        st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
            min_size=3,
            max_size=64,
        ),
        st.floats(min_value=0.5, max_value=10.0),
    )
    def test_inl_is_shift_invariant(self, noise, lsb):
        codes = np.arange(len(noise), dtype=float) * lsb
        curve = codes + np.asarray(noise) * 0.01
        if abs(curve[-1] - curve[0]) < 1e-9:
            return
        inl_a = integral_nonlinearity(curve, lsb=lsb)
        inl_b = integral_nonlinearity(curve + 123.4, lsb=lsb)
        assert np.allclose(inl_a, inl_b)


class TestWaveformProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_high_time_never_exceeds_window(self, transitions):
        trace = WaveformTrace(name="w")
        for time_ps, value in sorted(transitions, key=lambda item: item[0]):
            trace.record(time_ps, value)
        window = 1e4
        high = trace.high_time_ps(0.0, window)
        assert 0.0 <= high <= window
        duty = trace.duty_cycle(window)
        assert 0.0 <= duty <= 1.0

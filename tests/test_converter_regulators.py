"""Tests for the linear-regulator and switched-capacitor models."""

from __future__ import annotations

import pytest

from repro.converter.linear_regulator import LinearRegulator, LinearRegulatorType
from repro.converter.switched_capacitor import SwitchedCapacitorConverter


class TestLinearRegulatorTypes:
    def test_dropout_ordering_matches_paper(self):
        # Paper eqs. 6-8: standard needs the most headroom, LDO the least.
        standard = LinearRegulatorType.STANDARD.dropout_voltage_v
        quasi = LinearRegulatorType.QUASI_LDO.dropout_voltage_v
        ldo = LinearRegulatorType.LDO.dropout_voltage_v
        assert standard > quasi > ldo

    def test_ground_current_ordering_matches_paper(self):
        # Paper: the standard regulator has the lowest ground-pin current,
        # the LDO the highest.
        load = 0.1
        currents = {
            kind: LinearRegulator(kind, output_voltage_v=1.0).ground_pin_current_a(load)
            for kind in LinearRegulatorType
        }
        assert currents[LinearRegulatorType.STANDARD] < currents[LinearRegulatorType.QUASI_LDO]
        assert currents[LinearRegulatorType.QUASI_LDO] < currents[LinearRegulatorType.LDO]


class TestLinearRegulator:
    def test_ldo_regulates_from_low_headroom(self):
        ldo = LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=1.0)
        standard = LinearRegulator(LinearRegulatorType.STANDARD, output_voltage_v=1.0)
        assert ldo.can_regulate(1.4)
        assert not standard.can_regulate(1.4)

    def test_efficiency_bounded_by_voltage_ratio(self):
        ldo = LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=1.0)
        eta = ldo.efficiency(input_voltage_v=1.8, load_current_a=0.1)
        assert eta < 1.0 / 1.8 + 1e-9
        assert eta == pytest.approx(1.0 / 1.8, rel=0.05)

    def test_efficiency_improves_with_smaller_dropout(self):
        ldo = LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=1.0)
        assert ldo.efficiency(1.35, 0.1) > ldo.efficiency(1.8, 0.1)

    def test_power_loss_consistent_with_efficiency(self):
        ldo = LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=1.0)
        eta = ldo.efficiency(1.8, 0.1)
        loss = ldo.power_loss_w(1.8, 0.1)
        p_out = 1.0 * 0.1
        assert loss == pytest.approx(p_out * (1 / eta - 1))

    def test_regulation_failure_raises(self):
        standard = LinearRegulator(LinearRegulatorType.STANDARD, output_voltage_v=1.5)
        with pytest.raises(ValueError, match="cannot regulate"):
            standard.efficiency(1.8, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=0.0)
        ldo = LinearRegulator(LinearRegulatorType.LDO, output_voltage_v=1.0)
        with pytest.raises(ValueError):
            ldo.efficiency(1.8, 0.0)
        with pytest.raises(ValueError):
            ldo.ground_pin_current_a(-1.0)


class TestSwitchedCapacitorConverter:
    def test_unloaded_output_is_ideal_ratio(self):
        converter = SwitchedCapacitorConverter(conversion_ratio=0.5)
        assert converter.output_voltage_v(1.8, 0.0) == pytest.approx(0.9)

    def test_load_droops_output(self):
        converter = SwitchedCapacitorConverter()
        unloaded = converter.output_voltage_v(1.8, 0.0)
        loaded = converter.output_voltage_v(1.8, 0.01)
        assert loaded < unloaded

    def test_weak_line_regulation(self):
        # Paper: the output follows the input -- no regulation capability.
        converter = SwitchedCapacitorConverter(conversion_ratio=0.5)
        error = converter.regulation_error_v(1.8, 2.0, load_current_a=0.01)
        assert error == pytest.approx(0.1)

    def test_efficiency_degrades_with_load(self):
        converter = SwitchedCapacitorConverter()
        assert converter.efficiency(1.8, 0.001) > converter.efficiency(1.8, 0.02)

    def test_faster_switching_or_bigger_caps_stiffen_output(self):
        weak = SwitchedCapacitorConverter(flying_capacitance_f=1e-9)
        strong = SwitchedCapacitorConverter(flying_capacitance_f=10e-9)
        assert strong.output_resistance_ohm < weak.output_resistance_ohm

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchedCapacitorConverter(conversion_ratio=0.0)
        converter = SwitchedCapacitorConverter()
        with pytest.raises(ValueError):
            converter.output_voltage_v(0.0, 0.01)
        with pytest.raises(ValueError):
            converter.efficiency(1.8, 0.0)

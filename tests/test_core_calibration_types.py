"""Tests for the calibration trace/result containers."""

from __future__ import annotations

import pytest

from repro.core.calibration import (
    CalibrationResult,
    ContinuousCalibrationTrace,
    LockingStep,
    LockingTrace,
)


def _step(cycle, state, delay, locked=False):
    return LockingStep(
        cycle=cycle,
        control_state=state,
        line_delay_ps=delay,
        comparison=1 if locked else 0,
        locked=locked,
    )


class TestLockingTrace:
    def test_lock_cycle_is_first_locked_step(self):
        trace = LockingTrace(scheme="proposed", clock_period_ps=10_000.0)
        trace.append(_step(0, 1, 80.0))
        trace.append(_step(1, 2, 160.0))
        trace.append(_step(2, 3, 240.0, locked=True))
        assert trace.lock_cycle == 2
        assert trace.final_state == 3
        assert len(trace) == 3

    def test_lock_cycle_none_when_never_locked(self):
        trace = LockingTrace(scheme="conventional", clock_period_ps=10_000.0)
        trace.append(_step(0, 0, 5_000.0))
        assert trace.lock_cycle is None

    def test_histories(self):
        trace = LockingTrace(scheme="proposed", clock_period_ps=10_000.0)
        for cycle in range(4):
            trace.append(_step(cycle, cycle + 1, 80.0 * (cycle + 1)))
        assert trace.control_history() == [1, 2, 3, 4]
        assert trace.delay_history_ps() == [80.0, 160.0, 240.0, 320.0]

    def test_final_state_on_empty_trace_raises(self):
        with pytest.raises(ValueError):
            LockingTrace(scheme="proposed", clock_period_ps=1.0).final_state


class TestCalibrationResult:
    def test_residual_error_fraction(self):
        trace = LockingTrace(scheme="proposed", clock_period_ps=10_000.0)
        result = CalibrationResult(
            scheme="proposed",
            locked=True,
            lock_cycles=10,
            control_state=62,
            locked_delay_ps=4_960.0,
            target_ps=5_000.0,
            residual_error_ps=-40.0,
            trace=trace,
        )
        assert result.residual_error_fraction == pytest.approx(-0.008)

    def test_zero_target_gives_zero_fraction(self):
        trace = LockingTrace(scheme="proposed", clock_period_ps=1.0)
        result = CalibrationResult(
            scheme="proposed",
            locked=False,
            lock_cycles=0,
            control_state=0,
            locked_delay_ps=0.0,
            target_ps=0.0,
            residual_error_ps=0.0,
            trace=trace,
        )
        assert result.residual_error_fraction == 0.0


class TestContinuousCalibrationTrace:
    def test_append_and_error_metric(self):
        trace = ContinuousCalibrationTrace(scheme="proposed")
        trace.append(0, 25.0, 62, 4_960.0, 5_000.0)
        trace.append(64, 85.0, 60, 4_980.0, 5_000.0)
        assert len(trace) == 2
        assert trace.max_tracking_error_fraction() == pytest.approx(0.008)

    def test_empty_trace_error_is_zero(self):
        assert ContinuousCalibrationTrace(scheme="x").max_tracking_error_fraction() == 0.0

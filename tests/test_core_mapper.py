"""Tests for the proposed scheme's mapping block (paper eq. 18)."""

from __future__ import annotations

import pytest

from repro.core.mapper import MappingBlock


class TestMappingBlock:
    def test_word_bits_and_shift(self):
        mapper = MappingBlock(num_cells=256)
        assert mapper.word_bits == 8
        assert mapper.shift_amount == 7
        assert mapper.max_word == 255

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            MappingBlock(num_cells=100)
        with pytest.raises(ValueError):
            MappingBlock(num_cells=1)

    def test_fast_corner_lock_is_identity_like(self):
        # With half the line locked to half the period (tap_sel = N/2), the
        # mapping is the identity: word w selects tap w.
        mapper = MappingBlock(num_cells=256)
        for word in (0, 1, 17, 128, 255):
            assert mapper.map(word, tap_sel=128) == word

    def test_slow_corner_lock_compresses_words(self):
        # tap_sel = 32 on a 256-cell line: four input words per tap (the
        # plateaus of paper Figure 50).
        mapper = MappingBlock(num_cells=256)
        assert mapper.map(4, tap_sel=32) == 1
        assert mapper.map(7, tap_sel=32) == 1
        assert mapper.map(8, tap_sel=32) == 2
        assert mapper.distinct_levels(tap_sel=32) == 64

    def test_matches_paper_mapping_example(self):
        # Paper section 3.1.2: 20-cell-per-period system; at the slow corner
        # (5 cells per period, tap_sel = 2 per half period on an 8-cell
        # power-of-two line) the 50 % word maps to a quarter of the line.
        mapper = MappingBlock(num_cells=8)
        half_scale_word = 4
        assert mapper.map(half_scale_word, tap_sel=2) == 2

    def test_mapping_is_monotonic_in_duty_word(self):
        mapper = MappingBlock(num_cells=64)
        for tap_sel in (5, 16, 32, 64):
            mapped = [mapper.map(word, tap_sel) for word in range(64)]
            assert mapped == sorted(mapped)

    def test_mapping_never_exceeds_line_length(self):
        mapper = MappingBlock(num_cells=64)
        for tap_sel in (1, 33, 64):
            for word in range(64):
                assert 0 <= mapper.map(word, tap_sel) <= 63

    def test_full_scale_word_reaches_roughly_twice_tap_sel(self):
        # The full-scale word should select about 2*tap_sel cells, i.e. one
        # full clock period worth of delay.
        mapper = MappingBlock(num_cells=256)
        for tap_sel in (31, 64, 100, 128):
            mapped = mapper.map(255, tap_sel)
            assert abs(mapped - 2 * tap_sel) <= max(2, 2 * tap_sel // 64)

    def test_zero_word_maps_to_zero(self):
        mapper = MappingBlock(num_cells=128)
        for tap_sel in (1, 17, 64, 128):
            assert mapper.map(0, tap_sel) == 0

    def test_out_of_range_inputs_rejected(self):
        mapper = MappingBlock(num_cells=64)
        with pytest.raises(ValueError):
            mapper.map(64, tap_sel=32)
        with pytest.raises(ValueError):
            mapper.map(-1, tap_sel=32)
        with pytest.raises(ValueError):
            mapper.map(10, tap_sel=0)
        with pytest.raises(ValueError):
            mapper.map(10, tap_sel=65)

    def test_ideal_duty(self):
        mapper = MappingBlock(num_cells=256)
        assert mapper.ideal_duty(128) == pytest.approx(0.5)
        assert mapper.ideal_duty(255) == pytest.approx(255 / 256)

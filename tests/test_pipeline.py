"""Tests for the fused silicon-to-regulation pipeline.

The load-bearing property: the fused pipeline must match composing the two
engines by hand, instance by instance -- a scalar
:class:`CalibratedDelayLineDPWM` (cycle-accurate lock, per-word table) closed
inside a scalar :class:`DigitallyControlledBuck`, run period by period.
Bit-exact: identical duty-word decisions and identical output-voltage
histories, not merely close ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck, IdealDPWM
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.ensemble import ConventionalEnsemble, ProposedEnsemble
from repro.core.yield_analysis import (
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
    closed_loop_yield,
)
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.pipeline import (
    ChunkedFabricator,
    ChunkedSiliconToRegulation,
    SiliconToRegulationPipeline,
    fabricate_ensemble,
)
from repro.simulation.batch import BatchQuantizer
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

LIBRARY = intel32_like_library()
SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=5)

schemes = st.sampled_from(["proposed", "conventional"])
corners = st.sampled_from(list(ProcessCorner))
seeds = st.integers(min_value=0, max_value=2**16)


def _hand_composed(pipeline, design, conditions, periods):
    """The two engines composed by hand: one scalar DPWM + loop per instance."""
    num = pipeline.num_instances
    words = np.empty((periods, num), dtype=np.int64)
    voltages = np.empty((periods, num))
    duty_tables = []
    for index in range(num):
        line = design.build_line(
            library=LIBRARY, variation=pipeline.ensemble.batch.instance(index)
        )
        dpwm = CalibratedDelayLineDPWM(line, conditions)
        duty_tables.append(dpwm.duty_table())
        loop = DigitallyControlledBuck(
            pipeline.parameters.variant(index),
            dpwm,
            reference_v=pipeline.reference_v,
        )
        trace = loop.run(periods)
        words[:, index] = trace.duty_words
        voltages[:, index] = trace.output_voltages_v
    return words, voltages, duty_tables


class TestFusedVersusHandComposed:
    @settings(max_examples=12, deadline=None)
    @given(scheme=schemes, corner=corners, seed=seeds)
    def test_pipeline_matches_scalar_composition_bit_exactly(
        self, scheme, corner, seed
    ):
        conditions = OperatingConditions(corner=corner)
        design_fn = design_proposed if scheme == "proposed" else design_conventional
        design = design_fn(SPEC, LIBRARY)
        pipeline = SiliconToRegulationPipeline(
            scheme,
            SPEC,
            conditions,
            variation=VariationModel(random_sigma=0.05, gradient_peak=0.01, seed=seed),
            num_instances=3,
            component_variation=ComponentVariation(seed=seed),
            library=LIBRARY,
        )
        periods = 40
        result = pipeline.run(periods)
        words, voltages, duty_tables = _hand_composed(
            pipeline, design, conditions, periods
        )
        np.testing.assert_array_equal(result.regulation.duty_words, words)
        np.testing.assert_array_equal(result.regulation.output_voltages_v, voltages)
        for index, table in enumerate(duty_tables):
            np.testing.assert_array_equal(
                pipeline.quantizer.levels[index, : table.size], table
            )

    def test_pipeline_matches_composition_under_load_step(self):
        conditions = OperatingConditions.typical()
        load = SteppedLoad(light_ohm=2.0, heavy_ohm=0.9, step_up_period=15)
        pipeline = SiliconToRegulationPipeline(
            "proposed",
            SPEC,
            conditions,
            variation=VariationModel(seed=3),
            num_instances=2,
            load=load,
            library=LIBRARY,
        )
        result = pipeline.run(50)
        design = design_proposed(SPEC, LIBRARY)
        for index in range(2):
            line = design.build_line(
                library=LIBRARY, variation=pipeline.ensemble.batch.instance(index)
            )
            loop = DigitallyControlledBuck(
                pipeline.parameters.variant(index),
                CalibratedDelayLineDPWM(line, conditions),
                reference_v=0.9,
                load=load,
            )
            trace = loop.run(50)
            np.testing.assert_array_equal(
                np.asarray(trace.duty_words), result.regulation.duty_words[:, index]
            )
            np.testing.assert_array_equal(
                np.asarray(trace.output_voltages_v),
                result.regulation.output_voltages_v[:, index],
            )


class TestFabricateEnsemble:
    def test_designs_both_schemes(self):
        proposed = fabricate_ensemble(
            "proposed", SPEC, VariationModel(seed=1), 4, LIBRARY
        )
        conventional = fabricate_ensemble(
            "conventional", SPEC, VariationModel(seed=1), 4, LIBRARY
        )
        assert isinstance(proposed, ProposedEnsemble)
        assert isinstance(conventional, ConventionalEnsemble)
        assert proposed.num_instances == conventional.num_instances == 4

    def test_none_variation_fabricates_nominal_silicon(self):
        ensemble = fabricate_ensemble("proposed", SPEC, None, 3, LIBRARY)
        assert ensemble.batch is None
        assert ensemble.num_instances == 3
        conditions = OperatingConditions.typical()
        delays = ensemble.cell_delays_ps(conditions)
        np.testing.assert_array_equal(delays[0], delays[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            fabricate_ensemble("ideal", SPEC, None, 2, LIBRARY)
        with pytest.raises(ValueError, match="at least one instance"):
            fabricate_ensemble("proposed", SPEC, None, 0, LIBRARY)


class TestChunkedFabricator:
    def test_design_runs_once_and_chunks_share_it(self):
        fabricator = ChunkedFabricator(
            "proposed", SPEC, variation=VariationModel(seed=2), library=LIBRARY
        )
        first = fabricator.fabricate(3)
        second = fabricator.fabricate(2, first_instance=3)
        assert first.config == second.config == fabricator.config

    @given(scheme=schemes, split=st.integers(min_value=1, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_chunks_tile_the_one_shot_fabrication(self, scheme, split):
        fabricator = ChunkedFabricator(
            scheme, SPEC, variation=VariationModel(seed=4), library=LIBRARY
        )
        whole = fabricator.fabricate(8)
        head = fabricator.fabricate(split)
        tail = fabricator.fabricate(8 - split, first_instance=split)
        np.testing.assert_array_equal(
            whole.batch.multipliers,
            np.concatenate([head.batch.multipliers, tail.batch.multipliers]),
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ChunkedFabricator("ideal", SPEC, library=LIBRARY)
        with pytest.raises(ValueError, match="at least one instance"):
            ChunkedFabricator("proposed", SPEC, library=LIBRARY).fabricate(0)


class TestChunkedSiliconToRegulation:
    @given(
        scheme=schemes,
        chunks=st.sampled_from([(6,), (3, 3), (1, 5), (2, 2, 2), (4, 1, 1)]),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_chunking_matches_the_one_shot_run(self, scheme, chunks):
        """The tentpole contract: chunk boundaries never change the stream."""
        runner = ChunkedSiliconToRegulation(
            scheme,
            SPEC,
            OperatingConditions.typical(),
            variation=VariationModel(seed=6),
            component_variation=ComponentVariation(seed=6),
            library=LIBRARY,
        )
        one_shot = runner.run_chunk(0, 6, periods=80)
        first_instance = 0
        pieces = []
        for count in chunks:
            pieces.append(runner.run_chunk(first_instance, count, periods=80))
            first_instance += count
        np.testing.assert_array_equal(
            one_shot.regulation.output_voltages_v,
            np.concatenate(
                [piece.regulation.output_voltages_v for piece in pieces], axis=1
            ),
        )
        np.testing.assert_array_equal(
            one_shot.calibration.locked,
            np.concatenate([piece.calibration.locked for piece in pieces]),
        )

    def test_uniform_parameters_without_component_variation(self):
        runner = ChunkedSiliconToRegulation(
            "proposed", SPEC, library=LIBRARY
        )
        result = runner.run_chunk(0, 3, periods=40)
        assert result.num_instances == 3
        assert result.scheme == "proposed"

    def test_mismatched_switching_frequency_rejected(self):
        nominal = BuckParameters(switching_frequency_hz=50e6)
        with pytest.raises(ValueError, match="one switching clock"):
            ChunkedSiliconToRegulation(
                "proposed", SPEC, nominal=nominal, library=LIBRARY
            )


class TestPipelineConstruction:
    def test_mismatched_switching_frequency_rejected(self):
        nominal = BuckParameters(switching_frequency_hz=50e6)
        with pytest.raises(ValueError, match="one switching clock"):
            SiliconToRegulationPipeline(
                "proposed", SPEC, nominal=nominal, num_instances=2, library=LIBRARY
            )

    def test_defaults_follow_the_spec_frequency(self):
        pipeline = SiliconToRegulationPipeline(
            "proposed", SPEC, num_instances=2, library=LIBRARY
        )
        assert pipeline.nominal.switching_frequency_hz == pytest.approx(100e6)
        assert pipeline.parameters.num_variants == 2
        assert pipeline.quantizer.num_variants == 2

    def test_result_statistics_shapes(self):
        pipeline = SiliconToRegulationPipeline(
            "proposed",
            SPEC,
            variation=VariationModel(seed=5),
            num_instances=4,
            library=LIBRARY,
        )
        result = pipeline.run(60)
        assert result.num_instances == 4
        assert result.steady_state_voltages_v().shape == (4,)
        assert result.limit_cycle_amplitudes_v().shape == (4,)
        assert np.all(result.regulation_errors_v() >= 0.0)
        assert result.regulation.num_periods == 60


class TestBatchQuantizerFromEnsemble:
    def test_matches_scalar_calibrated_tables(self):
        conditions = OperatingConditions.typical()
        design = design_proposed(SPEC, LIBRARY)
        config = design.build_line(library=LIBRARY).config
        model = VariationModel(seed=9)
        ensemble = ProposedEnsemble.sample(config, 3, model, library=LIBRARY)
        curves = ensemble.transfer_curves(conditions)
        quantizer = BatchQuantizer.from_ensemble(curves)
        for index in range(3):
            line = design.build_line(
                library=LIBRARY, variation=ensemble.batch.instance(index)
            )
            dpwm = CalibratedDelayLineDPWM(line, conditions)
            reference = np.array(
                [dpwm.duty_fraction(word) for word in range(dpwm.max_word + 1)]
            )
            np.testing.assert_array_equal(quantizer.levels[index], reference)

    def test_word_zero_is_the_no_pulse_word(self):
        ensemble = fabricate_ensemble(
            "proposed", SPEC, VariationModel(seed=2), 2, LIBRARY
        )
        quantizer = BatchQuantizer.from_ensemble(
            ensemble.transfer_curves(OperatingConditions.typical())
        )
        np.testing.assert_array_equal(quantizer.levels[:, 0], [0.0, 0.0])
        assert np.all(np.diff(quantizer.levels, axis=1) >= 0.0)

    def test_narrower_word_register(self):
        ensemble = fabricate_ensemble("proposed", SPEC, None, 1, LIBRARY)
        curves = ensemble.transfer_curves(OperatingConditions.typical())
        quantizer = BatchQuantizer.from_ensemble(curves, num_words=8)
        assert quantizer.levels.shape == (1, 8)

    def test_validation(self):
        class FakeCurves:
            input_words = np.array([2, 3, 4])
            delays_ps = np.ones((1, 3))
            clock_period_ps = 100.0

        with pytest.raises(ValueError, match="contiguous"):
            BatchQuantizer.from_ensemble(FakeCurves())

        class ShapeMismatch:
            input_words = np.array([1, 2, 3])
            delays_ps = np.ones((1, 4))
            clock_period_ps = 100.0

        with pytest.raises(ValueError, match="covers"):
            BatchQuantizer.from_ensemble(ShapeMismatch())

        ensemble = fabricate_ensemble("proposed", SPEC, None, 1, LIBRARY)
        curves = ensemble.transfer_curves(OperatingConditions.typical())
        with pytest.raises(ValueError, match="num_words"):
            BatchQuantizer.from_ensemble(curves, num_words=1)
        with pytest.raises(ValueError, match="num_words"):
            BatchQuantizer.from_ensemble(curves, num_words=10_000)


class TestSpecFramework:
    def test_linearity_spec_validation(self):
        with pytest.raises(ValueError):
            LinearitySpec(dnl_limit_lsb=0.0)
        with pytest.raises(ValueError):
            LinearitySpec(error_limit_fraction=-1.0)

    def test_regulation_spec_validation(self):
        with pytest.raises(ValueError):
            RegulationSpec(tolerance_v=0.0)
        with pytest.raises(ValueError):
            RegulationSpec(ripple_limit_v=-0.1)
        with pytest.raises(ValueError):
            RegulationSpec(tail_fraction=0.0)

    def test_linearity_spec_evaluates_ensembles(self):
        conditions = OperatingConditions.typical()
        ensemble = fabricate_ensemble(
            "proposed", SPEC, VariationModel(seed=4), 5, LIBRARY
        )
        calibration = ensemble.lock(conditions)
        curves = ensemble.transfer_curves(conditions, calibration=calibration)
        passes = LinearitySpec().evaluate(calibration, curves)
        assert passes.shape == (5,)
        # A spec no instance can meet fails everyone; the permissive default
        # passes the locked, monotonic typical-corner population.
        assert bool(passes.all())
        impossible = LinearitySpec(error_limit_fraction=1e-9)
        assert not impossible.evaluate(calibration, curves).any()

    def test_regulation_spec_ripple_limit(self):
        steady = np.array([0.9, 0.9, 0.95])
        ripple = np.array([0.001, 0.5, 0.001])
        spec = RegulationSpec(tolerance_v=0.02, ripple_limit_v=0.05)
        np.testing.assert_array_equal(
            spec.passes(steady, ripple, 0.9), [True, False, False]
        )


class TestClosedLoopYield:
    def test_composes_linearity_and_regulation(self):
        result = closed_loop_yield(
            "proposed",
            SPEC,
            OperatingConditions.typical(),
            variation=VariationModel(seed=11),
            num_instances=8,
            periods=120,
            linearity_spec=LinearitySpec(error_limit_fraction=0.06),
            regulation_spec=RegulationSpec(tolerance_v=0.02),
            library=LIBRARY,
        )
        np.testing.assert_array_equal(
            result.passes, result.linearity_passes & result.regulation_passes
        )
        assert result.num_instances == 8
        assert 0.0 <= result.closed_loop_yield <= 1.0
        assert result.closed_loop_yield <= min(
            result.linearity_yield, result.regulation_yield
        )
        assert result.pipeline_result.regulation.num_periods == 120

    def test_unlocked_silicon_fails_the_composed_spec(self):
        # At the slow corner the conventional DLL saturates (fig37): the
        # loops still regulate, but require_lock fails the composed spec.
        result = closed_loop_yield(
            "conventional",
            DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6),
            OperatingConditions.slow(),
            variation=VariationModel(seed=11),
            num_instances=16,
            periods=120,
            library=LIBRARY,
        )
        assert result.lock_yield < 0.5
        assert result.closed_loop_yield <= result.lock_yield
        assert result.regulation_yield > result.closed_loop_yield


class TestQuantizerFastPath:
    def test_duty_table_fast_path_matches_per_word_extraction(self):
        conditions = OperatingConditions.typical()
        design = design_proposed(SPEC, LIBRARY)
        config = design.build_line(library=LIBRARY).config
        sample = VariationModel(seed=6).sample(
            config.num_cells, config.buffers_per_cell
        )
        line = design.build_line(library=LIBRARY, variation=sample)
        dpwm = CalibratedDelayLineDPWM(line, conditions)
        ideal = IdealDPWM(bits=6)

        class NoTable:
            """The slow path: duty_fraction only."""

            def __init__(self, inner):
                self._inner = inner
                self.max_word = inner.max_word

            def duty_fraction(self, word):
                return self._inner.duty_fraction(word)

        fast = BatchQuantizer.from_quantizers([dpwm, ideal])
        slow = BatchQuantizer.from_quantizers([NoTable(dpwm), NoTable(ideal)])
        np.testing.assert_array_equal(fast.levels, slow.levels)
        np.testing.assert_array_equal(fast.num_words, slow.num_words)

    def test_lying_duty_table_rejected(self):
        class Liar:
            max_word = 7

            def duty_table(self):
                return np.zeros(4)

            def duty_fraction(self, word):
                return 0.0

        with pytest.raises(ValueError, match="duty_table"):
            BatchQuantizer.from_quantizers([Liar()])

    def test_ideal_dpwm_duty_table_matches_duty_fraction(self):
        dpwm = IdealDPWM(bits=5)
        table = dpwm.duty_table()
        assert table.shape == (32,)
        for word in range(32):
            assert table[word] == dpwm.duty_fraction(word)

"""Tests for the ADC, compensator, load profiles and mission composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter.adc import WindowedADC
from repro.converter.compensator import PIDCompensator
from repro.converter.load import (
    ConstantLoad,
    LineTransient,
    PulseTrainLoad,
    RampLoad,
    RandomBurstLoad,
    ReferenceStep,
    SteppedLoad,
)
from repro.converter.missions import (
    MissionGenerator,
    MissionProfile,
    MissionSegment,
    OffsetLoad,
    resolve_missions,
)


class TestWindowedADC:
    def test_zero_error_gives_zero_code(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.9) == 0

    def test_quantization_rounds_to_nearest_code(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.889) == 2
        assert adc.quantize_error(0.9, 0.912) == -2

    def test_saturation_at_window_edges(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.0) == adc.max_code
        assert adc.quantize_error(0.9, 1.8) == adc.min_code
        assert adc.is_saturated(0.9, 0.0)
        assert not adc.is_saturated(0.9, 0.898)

    def test_dead_band_suppresses_small_errors(self):
        adc = WindowedADC(lsb_v=0.005, bits=5, dead_band_v=0.01)
        assert adc.quantize_error(0.9, 0.893) == 0
        assert adc.quantize_error(0.9, 0.88) != 0

    def test_dead_band_error_is_never_saturated(self):
        # Regression: is_saturated used to re-quantize without the dead band,
        # so a wide dead band could disagree with quantize_error.
        adc = WindowedADC(lsb_v=0.005, bits=4, dead_band_v=0.1)
        # |error| = 0.08 is inside the dead band (code 0) but 16 LSBs wide,
        # beyond the 3-bit signed window.
        assert adc.quantize_error(0.9, 0.82) == 0
        assert not adc.is_saturated(0.9, 0.82)

    def test_saturation_agrees_with_quantization_everywhere(self):
        adc = WindowedADC(lsb_v=0.005, bits=5, dead_band_v=0.012)
        for measured in np.linspace(0.6, 1.2, 601):
            code = adc.quantize_error(0.9, measured)
            saturated = adc.is_saturated(0.9, measured)
            if saturated:
                assert code in (adc.min_code, adc.max_code)
            if code not in (adc.min_code, adc.max_code):
                assert not saturated

    def test_vectorized_quantization_matches_scalar(self):
        adc = WindowedADC(lsb_v=0.005, bits=5, dead_band_v=0.008)
        measured = np.linspace(0.5, 1.3, 257)
        codes = adc.quantize_error_array(0.9, measured)
        assert codes.tolist() == [adc.quantize_error(0.9, m) for m in measured]

    def test_full_scale(self):
        adc = WindowedADC(lsb_v=0.01, bits=4)
        assert adc.max_code == 7
        assert adc.min_code == -8
        assert adc.full_scale_v == pytest.approx(0.07)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedADC(lsb_v=0.0)
        with pytest.raises(ValueError):
            WindowedADC(bits=1)
        with pytest.raises(ValueError):
            WindowedADC(dead_band_v=-0.1)


class TestPIDCompensator:
    def test_zero_error_holds_initial_duty(self):
        pid = PIDCompensator(initial_duty=0.5)
        assert pid.update(0) == pytest.approx(0.5)
        assert pid.update(0) == pytest.approx(0.5)

    def test_positive_error_raises_duty(self):
        pid = PIDCompensator(kp=0.01, ki=0.001, initial_duty=0.5)
        assert pid.update(5) > 0.5

    def test_negative_error_lowers_duty(self):
        pid = PIDCompensator(kp=0.01, ki=0.001, initial_duty=0.5)
        assert pid.update(-5) < 0.5

    def test_integral_accumulates(self):
        pid = PIDCompensator(kp=0.0, ki=0.01, initial_duty=0.5)
        for _ in range(10):
            pid.update(1)
        assert pid.integral == pytest.approx(0.6)

    def test_anti_windup_clamps_integrator(self):
        pid = PIDCompensator(kp=0.0, ki=0.1, initial_duty=0.5, max_duty=0.8)
        for _ in range(100):
            duty = pid.update(10)
        assert pid.integral <= 0.8
        assert duty <= 0.8

    def test_output_respects_duty_limits(self):
        pid = PIDCompensator(kp=1.0, initial_duty=0.5)
        assert pid.update(100) == 1.0
        assert pid.update(-100) == 0.0

    def test_derivative_term_reacts_to_error_change(self):
        pid = PIDCompensator(kp=0.0, ki=0.0, kd=0.01, initial_duty=0.5)
        first = pid.update(4)
        second = pid.update(4)
        assert first > 0.5
        assert second == pytest.approx(0.5)

    def test_reset_restores_initial_state(self):
        pid = PIDCompensator(ki=0.01, initial_duty=0.4)
        pid.update(10)
        pid.reset()
        assert pid.integral == pytest.approx(0.4)
        assert pid.update(0) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDCompensator(min_duty=0.9, max_duty=0.5)
        with pytest.raises(ValueError):
            PIDCompensator(initial_duty=1.5)


class TestLoads:
    def test_constant_load(self):
        load = ConstantLoad(resistance_ohm=2.0)
        assert load.resistance_at(0) == 2.0
        assert load.resistance_at(10**6) == 2.0
        with pytest.raises(ValueError):
            ConstantLoad(resistance_ohm=0.0)

    def test_stepped_load_profile(self):
        load = SteppedLoad(
            light_ohm=2.0, heavy_ohm=0.5, step_up_period=100, step_down_period=200
        )
        assert load.resistance_at(0) == 2.0
        assert load.resistance_at(99) == 2.0
        assert load.resistance_at(100) == 0.5
        assert load.resistance_at(199) == 0.5
        assert load.resistance_at(200) == 2.0

    def test_stepped_load_validation(self):
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=0.0, heavy_ohm=1.0, step_up_period=1)
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=1.0, heavy_ohm=1.0, step_up_period=10, step_down_period=5)
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=1.0, heavy_ohm=1.0, step_up_period=-1)

    def test_ramp_load_interpolates(self):
        load = RampLoad(start_ohm=2.0, end_ohm=1.0, ramp_start_period=100, ramp_end_period=300)
        assert load.resistance_at(0) == 2.0
        assert load.resistance_at(100) == 2.0
        assert load.resistance_at(200) == pytest.approx(1.5)
        assert load.resistance_at(300) == 1.0
        assert load.resistance_at(10**6) == 1.0

    def test_ramp_load_validation(self):
        with pytest.raises(ValueError):
            RampLoad(start_ohm=0.0, end_ohm=1.0, ramp_start_period=0, ramp_end_period=10)
        with pytest.raises(ValueError):
            RampLoad(start_ohm=1.0, end_ohm=2.0, ramp_start_period=10, ramp_end_period=10)

    def test_pulse_train_load_repeats(self):
        load = PulseTrainLoad(
            light_ohm=2.0, heavy_ohm=0.5, pulse_periods=3, train_period=10,
            first_pulse_period=5,
        )
        assert load.resistance_at(4) == 2.0
        for start in (5, 15, 25):
            assert load.resistance_at(start) == 0.5
            assert load.resistance_at(start + 2) == 0.5
            assert load.resistance_at(start + 3) == 2.0

    def test_pulse_train_validation(self):
        with pytest.raises(ValueError):
            PulseTrainLoad(light_ohm=1.0, heavy_ohm=1.0, pulse_periods=5, train_period=5)
        with pytest.raises(ValueError):
            PulseTrainLoad(light_ohm=1.0, heavy_ohm=1.0, pulse_periods=0, train_period=5)

    def test_random_burst_load_is_reproducible(self):
        load_a = RandomBurstLoad(light_ohm=2.0, heavy_ohm=0.5, seed=7)
        load_b = RandomBurstLoad(light_ohm=2.0, heavy_ohm=0.5, seed=7)
        values_a = [load_a.resistance_at(i) for i in range(500)]
        values_b = [load_b.resistance_at(i) for i in range(500)]
        assert values_a == values_b
        assert set(values_a) <= {2.0, 0.5}

    def test_random_burst_load_bursts_hold(self):
        load = RandomBurstLoad(
            light_ohm=2.0, heavy_ohm=0.5, burst_probability=0.05,
            burst_periods=10, horizon_periods=1000, seed=3,
        )
        values = np.array([load.resistance_at(i) for i in range(1000)])
        heavy = values == 0.5
        assert heavy.any() and not heavy.all()
        # Each burst holds the heavy load for at least burst_periods.
        starts = np.flatnonzero(heavy[1:] & ~heavy[:-1]) + 1
        for start in starts:
            assert heavy[start : start + 10].all() or start + 10 > 1000

    def test_reference_step(self):
        step = ReferenceStep(initial_v=0.9, final_v=1.2, step_period=100)
        assert step.reference_at(99) == 0.9
        assert step.reference_at(100) == 1.2
        assert step.max_reference_v == 1.2
        with pytest.raises(ValueError):
            ReferenceStep(initial_v=0.0, final_v=1.0, step_period=0)

    def test_line_transient(self):
        transient = LineTransient(
            nominal_v=1.8, disturbed_v=1.5, start_period=100, end_period=200
        )
        assert transient.voltage_at(99) == 1.8
        assert transient.voltage_at(100) == 1.5
        assert transient.voltage_at(199) == 1.5
        assert transient.voltage_at(200) == 1.8
        assert transient.min_voltage_v == 1.5
        with pytest.raises(ValueError):
            LineTransient(nominal_v=1.8, disturbed_v=1.5, start_period=10, end_period=10)


class TestMissionEdgeCases:
    """Regression tests: degenerate mission schedules fail loudly and typed.

    A zero-duration segment would own no period (the bisect lookup would
    silently skip it), and an empty schedule has no segment to evaluate at
    all -- both must be rejected at construction, not surface later as an
    IndexError mid-simulation.
    """

    def test_zero_duration_segment_raises(self):
        with pytest.raises(ValueError, match="at least one switching period"):
            MissionSegment(duration_periods=0)

    def test_negative_duration_segment_raises(self):
        with pytest.raises(ValueError, match="at least one switching period"):
            MissionSegment(duration_periods=-5, load=ConstantLoad(2.0))

    def test_empty_mission_schedule_raises(self):
        with pytest.raises(ValueError, match="empty mission schedule"):
            MissionProfile(segments=())

    def test_empty_mission_schedule_raises_from_sequence(self):
        with pytest.raises(ValueError, match="empty mission schedule"):
            MissionProfile(segments=[])

    def test_missing_channels_raise_typed_errors(self):
        mission = MissionProfile(
            segments=(MissionSegment(duration_periods=4),)
        )
        with pytest.raises(ValueError, match="no reference channel"):
            mission.reference_at(0)
        with pytest.raises(ValueError, match="no source channel"):
            mission.voltage_at(0)
        with pytest.raises(ValueError, match="non-negative"):
            mission.resistance_at(-1)

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="num_segments"):
            MissionGenerator(total_periods=10, num_segments=0)
        with pytest.raises(ValueError, match="cover at least"):
            MissionGenerator(total_periods=3, num_segments=4)
        with pytest.raises(ValueError, match="positive"):
            MissionGenerator(total_periods=10, light_ohm=0.0)
        generator = MissionGenerator(total_periods=64)
        with pytest.raises(ValueError, match="non-negative"):
            generator.mission(-1)
        with pytest.raises(ValueError, match="at least one instance"):
            generator.missions(0)

    def test_resolve_missions_requires_one_per_instance(self):
        mission = MissionProfile(
            segments=(MissionSegment(duration_periods=4),)
        )
        with pytest.raises(ValueError, match="one mission per instance"):
            resolve_missions([mission], num_instances=2)

    def test_offset_load_validation(self):
        load = ConstantLoad(2.0)
        with pytest.raises(ValueError, match="non-negative"):
            OffsetLoad(load=load, offset_periods=-1)
        shifted = OffsetLoad(load=load, offset_periods=3)
        with pytest.raises(ValueError, match="non-negative"):
            shifted.resistance_at(-1)
        assert OffsetLoad.wrap(load, 0) is load

"""Tests for the ADC, compensator and load profiles."""

from __future__ import annotations

import pytest

from repro.converter.adc import WindowedADC
from repro.converter.compensator import PIDCompensator
from repro.converter.load import ConstantLoad, SteppedLoad


class TestWindowedADC:
    def test_zero_error_gives_zero_code(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.9) == 0

    def test_quantization_rounds_to_nearest_code(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.889) == 2
        assert adc.quantize_error(0.9, 0.912) == -2

    def test_saturation_at_window_edges(self):
        adc = WindowedADC(lsb_v=0.005, bits=5)
        assert adc.quantize_error(0.9, 0.0) == adc.max_code
        assert adc.quantize_error(0.9, 1.8) == adc.min_code
        assert adc.is_saturated(0.9, 0.0)
        assert not adc.is_saturated(0.9, 0.898)

    def test_dead_band_suppresses_small_errors(self):
        adc = WindowedADC(lsb_v=0.005, bits=5, dead_band_v=0.01)
        assert adc.quantize_error(0.9, 0.893) == 0
        assert adc.quantize_error(0.9, 0.88) != 0

    def test_full_scale(self):
        adc = WindowedADC(lsb_v=0.01, bits=4)
        assert adc.max_code == 7
        assert adc.min_code == -8
        assert adc.full_scale_v == pytest.approx(0.07)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedADC(lsb_v=0.0)
        with pytest.raises(ValueError):
            WindowedADC(bits=1)
        with pytest.raises(ValueError):
            WindowedADC(dead_band_v=-0.1)


class TestPIDCompensator:
    def test_zero_error_holds_initial_duty(self):
        pid = PIDCompensator(initial_duty=0.5)
        assert pid.update(0) == pytest.approx(0.5)
        assert pid.update(0) == pytest.approx(0.5)

    def test_positive_error_raises_duty(self):
        pid = PIDCompensator(kp=0.01, ki=0.001, initial_duty=0.5)
        assert pid.update(5) > 0.5

    def test_negative_error_lowers_duty(self):
        pid = PIDCompensator(kp=0.01, ki=0.001, initial_duty=0.5)
        assert pid.update(-5) < 0.5

    def test_integral_accumulates(self):
        pid = PIDCompensator(kp=0.0, ki=0.01, initial_duty=0.5)
        for _ in range(10):
            pid.update(1)
        assert pid.integral == pytest.approx(0.6)

    def test_anti_windup_clamps_integrator(self):
        pid = PIDCompensator(kp=0.0, ki=0.1, initial_duty=0.5, max_duty=0.8)
        for _ in range(100):
            duty = pid.update(10)
        assert pid.integral <= 0.8
        assert duty <= 0.8

    def test_output_respects_duty_limits(self):
        pid = PIDCompensator(kp=1.0, initial_duty=0.5)
        assert pid.update(100) == 1.0
        assert pid.update(-100) == 0.0

    def test_derivative_term_reacts_to_error_change(self):
        pid = PIDCompensator(kp=0.0, ki=0.0, kd=0.01, initial_duty=0.5)
        first = pid.update(4)
        second = pid.update(4)
        assert first > 0.5
        assert second == pytest.approx(0.5)

    def test_reset_restores_initial_state(self):
        pid = PIDCompensator(ki=0.01, initial_duty=0.4)
        pid.update(10)
        pid.reset()
        assert pid.integral == pytest.approx(0.4)
        assert pid.update(0) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDCompensator(min_duty=0.9, max_duty=0.5)
        with pytest.raises(ValueError):
            PIDCompensator(initial_duty=1.5)


class TestLoads:
    def test_constant_load(self):
        load = ConstantLoad(resistance_ohm=2.0)
        assert load.resistance_at(0) == 2.0
        assert load.resistance_at(10**6) == 2.0
        with pytest.raises(ValueError):
            ConstantLoad(resistance_ohm=0.0)

    def test_stepped_load_profile(self):
        load = SteppedLoad(
            light_ohm=2.0, heavy_ohm=0.5, step_up_period=100, step_down_period=200
        )
        assert load.resistance_at(0) == 2.0
        assert load.resistance_at(99) == 2.0
        assert load.resistance_at(100) == 0.5
        assert load.resistance_at(199) == 0.5
        assert load.resistance_at(200) == 2.0

    def test_stepped_load_validation(self):
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=0.0, heavy_ohm=1.0, step_up_period=1)
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=1.0, heavy_ohm=1.0, step_up_period=10, step_down_period=5)
        with pytest.raises(ValueError):
            SteppedLoad(light_ohm=1.0, heavy_ohm=1.0, step_up_period=-1)

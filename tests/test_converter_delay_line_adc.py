"""Tests for the delay-line based windowed ADC."""

from __future__ import annotations

import pytest

from repro.converter.delay_line_adc import DelayLineADC, no_limit_cycle_condition
from repro.technology.corners import ProcessCorner


class TestDelayLineADC:
    def test_zero_error_at_reference(self):
        adc = DelayLineADC(reference_v=0.9)
        assert adc.quantize_error(0.9) == 0

    def test_sign_convention(self):
        adc = DelayLineADC(reference_v=0.9)
        # Output below the reference -> positive error (raise the duty).
        assert adc.quantize_error(0.80) > 0
        assert adc.quantize_error(1.00) < 0

    def test_code_magnitude_grows_with_error(self):
        adc = DelayLineADC(reference_v=0.9)
        small = adc.quantize_error(0.86)
        large = adc.quantize_error(0.75)
        assert 0 < small <= large

    def test_saturation(self):
        adc = DelayLineADC(reference_v=0.9, max_code=7)
        assert adc.quantize_error(0.3) == 7
        assert adc.quantize_error(1.8) == -7

    def test_matched_lines_cancel_process_corner(self):
        # The error code at the reference stays zero at every corner because
        # both sensing lines shift together -- the property that makes the
        # delay-line ADC usable without trimming.
        for corner in ProcessCorner:
            adc = DelayLineADC(reference_v=0.9, corner=corner)
            assert adc.quantize_error(0.9) == 0

    def test_lsb_is_a_few_tens_of_millivolts(self):
        adc = DelayLineADC(reference_v=0.9)
        assert 0.001 < adc.lsb_v < 0.1

    def test_bits_cover_windowed_range(self):
        adc = DelayLineADC(max_code=15)
        assert adc.bits == 5

    def test_taps_reached_bounded_by_line_length(self):
        adc = DelayLineADC(cells_per_line=16, window_ps=1e6)
        assert adc.taps_reached(1.0) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayLineADC(reference_v=0.0)
        with pytest.raises(ValueError):
            DelayLineADC(window_ps=-1.0)
        with pytest.raises(ValueError):
            DelayLineADC(cells_per_line=1)
        adc = DelayLineADC()
        with pytest.raises(ValueError):
            adc.quantize_error(-0.1)


class TestNoLimitCycleCondition:
    def test_fine_dpwm_passes(self):
        # 1.8 V / 2^10 = 1.8 mV step < a 10 mV ADC bin.
        assert no_limit_cycle_condition(1.8, dpwm_bits=10, adc_lsb_v=0.010)

    def test_coarse_dpwm_fails(self):
        # 1.8 V / 2^6 = 28 mV step > a 10 mV ADC bin -> limit cycling.
        assert not no_limit_cycle_condition(1.8, dpwm_bits=6, adc_lsb_v=0.010)

    def test_rule_motivates_high_resolution_dpwm(self):
        # The paper's motivating chain: ~13-bit DPWM resolution is what a
        # ~0.2 mV ADC bin on a 1.8 V rail demands.
        needed_bits = 13
        assert no_limit_cycle_condition(1.8, needed_bits, adc_lsb_v=0.00025)
        assert not no_limit_cycle_condition(1.8, needed_bits - 3, adc_lsb_v=0.00025)

    def test_validation(self):
        with pytest.raises(ValueError):
            no_limit_cycle_condition(0.0, 8, 0.01)
        with pytest.raises(ValueError):
            no_limit_cycle_condition(1.8, 0, 0.01)
        with pytest.raises(ValueError):
            no_limit_cycle_condition(1.8, 8, 0.0)

"""Integration tests: the full stack working together.

These tests cross module boundaries on purpose: design procedure ->
delay-line model -> calibration -> DPWM -> buck converter, and design
procedure -> netlist -> synthesizer -> power model, mirroring how a user of
the library would assemble the pieces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.power import netlist_dynamic_power_w
from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck, IdealDPWM
from repro.converter.load import SteppedLoad
from repro.core.comparison import compare_schemes
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.linearity import transfer_curve
from repro.core.proposed import ProposedController
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.variation import VariationModel


class TestDesignToRegulation:
    """Spec -> design -> calibration -> DPWM -> closed-loop regulation."""

    @pytest.mark.parametrize("frequency_mhz", [50.0, 100.0, 200.0])
    def test_regulation_at_every_design_frequency(self, frequency_mhz, library):
        spec = DesignSpec(clock_frequency_mhz=frequency_mhz, resolution_bits=6)
        line = design_proposed(spec, library).build_line(library=library)
        dpwm = CalibratedDelayLineDPWM(line, OperatingConditions.typical())
        parameters = BuckParameters(
            input_voltage_v=1.8, switching_frequency_hz=frequency_mhz * 1e6
        )
        loop = DigitallyControlledBuck(parameters, dpwm, reference_v=0.9)
        trace = loop.run(300)
        assert trace.steady_state_voltage_v() == pytest.approx(0.9, abs=0.03)

    def test_corner_change_recalibration_keeps_regulation(self, library):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        line = design_proposed(spec, library).build_line(library=library)
        dpwm = CalibratedDelayLineDPWM(line, OperatingConditions.fast())
        parameters = BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)

        fast_loop = DigitallyControlledBuck(parameters, dpwm, reference_v=1.2)
        fast_voltage = fast_loop.run(300).steady_state_voltage_v()

        dpwm.recalibrate(OperatingConditions.slow())
        slow_loop = DigitallyControlledBuck(parameters, dpwm, reference_v=1.2)
        slow_voltage = slow_loop.run(300).steady_state_voltage_v()

        assert fast_voltage == pytest.approx(1.2, abs=0.03)
        assert slow_voltage == pytest.approx(1.2, abs=0.03)

    def test_proposed_dpwm_matches_ideal_dpwm_regulation(self, library):
        """The calibrated delay-line DPWM regulates as well as an ideal quantizer."""
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        line = design_proposed(spec, library).build_line(library=library)
        parameters = BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)
        load = SteppedLoad(light_ohm=2.0, heavy_ohm=1.0, step_up_period=150)

        real = DigitallyControlledBuck(
            parameters,
            CalibratedDelayLineDPWM(line, OperatingConditions.typical()),
            reference_v=0.9,
            load=load,
        ).run(400)
        ideal = DigitallyControlledBuck(
            parameters, IdealDPWM(bits=8), reference_v=0.9, load=load
        ).run(400)

        assert real.steady_state_voltage_v() == pytest.approx(
            ideal.steady_state_voltage_v(), abs=0.02
        )

    def test_mismatched_silicon_still_regulates(self, library):
        """Post-APR mismatch flows through calibration into regulation."""
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        design = design_proposed(spec, library)
        sample = VariationModel(random_sigma=0.05, seed=77).sample(
            design.num_cells, design.buffers_per_cell
        )
        line = design.build_line(library=library, variation=sample)
        dpwm = CalibratedDelayLineDPWM(line, OperatingConditions.slow())
        parameters = BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)
        trace = DigitallyControlledBuck(parameters, dpwm, reference_v=0.9).run(300)
        assert trace.steady_state_voltage_v() == pytest.approx(0.9, abs=0.03)


class TestDesignToSynthesisAndPower:
    """Spec -> design -> netlist -> area report -> power model."""

    def test_area_and_power_roll_up_consistently(self, library, synthesizer):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        for build in (design_proposed, design_conventional):
            design = build(spec, library)
            netlist = design.build_line(library=library).netlist()
            report = synthesizer.synthesize(netlist)
            # Block areas add up to the total.
            assert sum(block.area_um2 for block in report.blocks) == pytest.approx(
                report.total_area_um2
            )
            # The power model consumes the same netlist without error and
            # scales linearly with frequency.
            p100 = netlist_dynamic_power_w(netlist, library, 1.0, 100e6)
            p200 = netlist_dynamic_power_w(netlist, library, 1.0, 200e6)
            assert p200 == pytest.approx(2 * p100)

    def test_comparison_consistent_with_individual_synthesis(self, library, synthesizer):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        comparison = compare_schemes(spec, library=library)
        direct = synthesizer.synthesize(
            design_proposed(spec, library).build_line(library=library).netlist()
        )
        assert comparison.proposed_area.total_area_um2 == pytest.approx(
            direct.total_area_um2
        )


class TestCalibrationToLinearity:
    """Calibration output feeds the linearity analysis coherently."""

    def test_transfer_curve_full_scale_tracks_lock(self, library):
        spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
        line = design_proposed(spec, library).build_line(library=library)
        for corner in ProcessCorner:
            conditions = OperatingConditions(corner=corner)
            result = ProposedController(line).lock(conditions)
            curve = transfer_curve(line, conditions, tap_sel=result.control_state)
            # Full-scale delay approaches (but does not exceed by much) the
            # clock period at every corner.
            full_scale = curve.delays_ps[-1]
            assert full_scale == pytest.approx(10_000.0, rel=0.06)
            assert np.all(np.diff(curve.delays_ps) >= 0)

"""Tests for the conventional adjustable-cells delay line and its controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    ShiftRegisterController,
    TuningOrder,
)
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.variation import VariationModel


def make_line(
    num_cells=64,
    branches=4,
    buffers_per_element=2,
    clock_period_ps=10_000.0,
    tuning_order=TuningOrder.ROUND_ROBIN,
    **kwargs,
):
    config = ConventionalDelayLineConfig(
        num_cells=num_cells,
        branches=branches,
        buffers_per_element=buffers_per_element,
        clock_period_ps=clock_period_ps,
        tuning_order=tuning_order,
    )
    return ConventionalDelayLine(config, **kwargs)


class TestConventionalConfig:
    def test_derived_quantities_match_paper(self):
        config = make_line().config
        assert config.resolution_bits == 6
        assert config.control_bits_per_cell == 2
        # Paper eq. 17: 64 cells x 2 bits + 1 = 129 bits.
        assert config.shift_register_bits == 129
        assert config.max_adjustment_steps == 64 * 3
        assert config.clock_frequency_mhz == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConventionalDelayLineConfig(1, 4, 2, 10_000.0)
        with pytest.raises(ValueError):
            ConventionalDelayLineConfig(64, 1, 2, 10_000.0)
        with pytest.raises(ValueError):
            ConventionalDelayLineConfig(64, 4, 0, 10_000.0)
        with pytest.raises(ValueError):
            ConventionalDelayLineConfig(64, 4, 2, 0.0)


class TestTuningLevels:
    def test_zero_steps_gives_all_minimum(self, library):
        line = make_line(library=library)
        assert np.all(line.levels_for_steps(0) == 0)

    def test_sequential_order_fills_first_cells_first(self, library):
        line = make_line(library=library, tuning_order=TuningOrder.SEQUENTIAL)
        levels = line.levels_for_steps(7)
        assert list(levels[:4]) == [3, 3, 1, 0]
        assert np.all(levels[4:] == 0)

    def test_round_robin_spreads_one_level_at_a_time(self, library):
        line = make_line(library=library, tuning_order=TuningOrder.ROUND_ROBIN)
        levels = line.levels_for_steps(70)
        # 64 cells get one step, the first 6 get a second.
        assert np.all(levels >= 1)
        assert int(levels.sum()) == 70
        assert levels.max() == 2

    def test_distributed_order_spreads_remainder(self, library):
        line = make_line(library=library, tuning_order=TuningOrder.DISTRIBUTED)
        levels = line.levels_for_steps(32)
        assert int(levels.sum()) == 32
        # The 32 raised cells are spread across the line, not clustered.
        raised = np.nonzero(levels)[0]
        assert raised[-1] - raised[0] > 32

    def test_steps_clamped_to_maximum(self, library):
        line = make_line(library=library)
        levels = line.levels_for_steps(10_000)
        assert np.all(levels == line.config.branches - 1)

    def test_step_count_preserved_for_all_orders(self, library):
        for order in TuningOrder:
            line = make_line(library=library, tuning_order=order)
            for steps in (0, 1, 17, 64, 100, 192):
                assert int(line.levels_for_steps(steps).sum()) == min(steps, 192)


class TestConventionalDelays:
    def test_min_and_max_total_delay(self, library):
        line = make_line(library=library)
        fast = OperatingConditions.fast()
        # All-minimum: 64 cells x 1 element x 2 buffers x 20 ps = 2.56 ns.
        assert line.min_total_delay_ps(fast) == pytest.approx(2_560.0)
        # All-maximum: 64 x 4 x 2 x 20 ps = 10.24 ns (paper eq. 29).
        assert line.max_total_delay_ps(fast) == pytest.approx(10_240.0)

    def test_covers_clock_period_at_all_corners(self, library):
        line = make_line(library=library)
        for conditions in OperatingConditions.all_corners():
            assert line.covers_clock_period(conditions)

    def test_tap_delays_monotonic(self, library):
        line = make_line(library=library)
        levels = line.levels_for_steps(100)
        taps = line.tap_delays_ps(levels, OperatingConditions.typical())
        assert np.all(np.diff(taps) > 0)

    def test_invalid_levels_rejected(self, library):
        line = make_line(library=library)
        with pytest.raises(ValueError):
            line.cell_delays_ps(np.zeros(10, dtype=int), OperatingConditions.typical())
        bad = np.zeros(64, dtype=int)
        bad[0] = 4
        with pytest.raises(ValueError):
            line.cell_delays_ps(bad, OperatingConditions.typical())

    def test_variation_branch_matches_per_cell_reference(self, library):
        # The vectorized cumulative-sum gather must reproduce the per-cell
        # prefix sums of the variation multipliers for every tuning profile.
        sample = VariationModel(random_sigma=0.05, gradient_peak=0.01, seed=7).sample(
            num_cells=64, buffers_per_cell=8
        )
        line = make_line(library=library, variation=sample)
        unit = library.buffer_delay_ps(OperatingConditions.typical())
        for steps in (0, 1, 17, 64, 100, 192):
            levels = line.levels_for_steps(steps)
            delays = line.cell_delays_ps(levels, OperatingConditions.typical())
            active = (levels + 1) * line.config.buffers_per_element
            reference = np.array(
                [
                    unit * sample.multipliers[index, : active[index]].sum()
                    for index in range(64)
                ]
            )
            np.testing.assert_allclose(delays, reference, rtol=0, atol=1e-12)

    def test_undersized_variation_sample_rejected(self, library):
        # The longest branch of the 64x4x2 line spans 8 buffers; a 4-buffer
        # sample cannot cover it (the seed implementation silently truncated).
        sample = VariationModel(seed=7).sample(num_cells=64, buffers_per_cell=4)
        with pytest.raises(ValueError, match="longest branch"):
            make_line(library=library, variation=sample)

    def test_output_delay_zero_word(self, library):
        line = make_line(library=library)
        levels = line.levels_for_steps(0)
        assert line.output_delay_ps(0, levels, OperatingConditions.typical()) == 0.0

    def test_output_delay_out_of_range_word(self, library):
        line = make_line(library=library)
        levels = line.levels_for_steps(0)
        with pytest.raises(ValueError):
            line.output_delay_ps(64, levels, OperatingConditions.typical())

    def test_netlist_shift_register_size(self, library):
        from repro.technology.cells import CellKind

        netlist = make_line(library=library).netlist()
        controller_dffs = netlist.find("Controller").cell_counts()[CellKind.DFF]
        assert controller_dffs == 129 + 2  # shift register + synchronizer


class TestShiftRegisterController:
    def test_locks_at_fast_and_typical_corners(self, library):
        line = make_line(library=library)
        controller = ShiftRegisterController(line)
        for corner in (ProcessCorner.FAST, ProcessCorner.TYPICAL):
            result = controller.lock(OperatingConditions(corner=corner))
            assert result.locked
            # Lock condition: the clock edge lies between the last two taps.
            levels = line.levels_for_steps(result.control_state)
            taps = line.tap_delays_ps(levels, OperatingConditions(corner=corner))
            assert taps[-2] < 10_000.0 <= taps[-1]

    def test_slow_corner_saturates_at_minimum(self, library):
        # At the slow corner the all-minimum line is already slightly longer
        # than the clock period, so the conventional controller cannot place
        # the edge between the last two taps; it stops with a small residual.
        line = make_line(library=library)
        result = ShiftRegisterController(line).lock(OperatingConditions.slow())
        assert not result.locked
        assert result.control_state == 0
        assert 0 < result.residual_error_ps < 300.0

    def test_fast_corner_needs_most_steps(self, library):
        line = make_line(library=library)
        controller = ShiftRegisterController(line)
        fast = controller.lock(OperatingConditions.fast())
        typical = controller.lock(OperatingConditions.typical())
        assert fast.control_state > typical.control_state

    def test_lock_cycles_account_for_update_rate(self, library):
        line = make_line(library=library)
        controller = ShiftRegisterController(line, cycles_per_update=2)
        result = controller.lock(OperatingConditions.typical())
        expected = (
            controller.synchronizer_latency_cycles
            + result.control_state * controller.cycles_per_update
        )
        assert result.lock_cycles == expected

    def test_conventional_slower_than_proposed(self, library, proposed_design):
        from repro.core.proposed import ProposedController

        conventional = make_line(library=library)
        proposed = proposed_design.build_line(library=library)
        conditions = OperatingConditions.typical()
        conventional_cycles = ShiftRegisterController(conventional).lock(conditions).lock_cycles
        proposed_cycles = ProposedController(proposed).lock(conditions).lock_cycles
        assert proposed_cycles < conventional_cycles

    def test_trace_delay_is_non_decreasing(self, library):
        line = make_line(library=library)
        result = ShiftRegisterController(line).lock(OperatingConditions.fast())
        delays = result.trace.delay_history_ps()
        assert all(b >= a for a, b in zip(delays, delays[1:]))

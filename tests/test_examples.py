"""Smoke tests: the example scripts run to completion and print their reports.

The long-running closed-loop example (``buck_regulation.py``, ~3 x 2500
switching periods) is not executed here to keep the suite fast; its pieces
are covered by the closed-loop integration tests and it can be run manually.
Its corner-level helper is still imported and exercised on a short run.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
FAST_EXAMPLES = sorted(
    path for path in EXAMPLES_DIR.glob("*.py") if path.stem != "buck_regulation"
)


def test_expected_examples_exist():
    names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart",
        "buck_regulation",
        "pvt_calibration",
        "dpwm_architecture_tradeoffs",
        "statistical_sizing",
    } <= names


@pytest.mark.parametrize("example", FAST_EXAMPLES, ids=lambda path: path.stem)
def test_fast_examples_run_and_print(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200


def test_buck_regulation_helper_runs_shortened(monkeypatch, capsys):
    module = runpy.run_path(str(EXAMPLES_DIR / "buck_regulation.py"))
    run_at_corner = module["run_at_corner"]
    # Shorten the scenario through the module-level constants the helper uses.
    module_globals = run_at_corner.__globals__
    module_globals["TOTAL_PERIODS"] = 300
    module_globals["STEP_UP_PERIOD"] = 100
    module_globals["STEP_DOWN_PERIOD"] = 200
    from repro.technology.corners import ProcessCorner

    result = run_at_corner(ProcessCorner.TYPICAL)
    assert result["corner"] == "typical"
    assert result["pre_step_v"] == pytest.approx(0.9, abs=0.03)
    assert result["final_v"] == pytest.approx(0.9, abs=0.05)

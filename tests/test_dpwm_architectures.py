"""Tests for the counter-based, delay-line and hybrid DPWM architectures."""

from __future__ import annotations

import pytest

from repro.converter.closed_loop import IdealDPWM
from repro.dpwm.base import DutyCycleRequest
from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.dpwm.delay_line_dpwm import DelayLineDPWM, DelayLineDPWMConfig
from repro.dpwm.hybrid_dpwm import HybridDPWM, HybridDPWMConfig
from repro.technology.cells import CellKind


class TestDutyCycleRequest:
    def test_ideal_duty_convention(self):
        assert DutyCycleRequest(word=0, bits=2).ideal_duty == pytest.approx(0.25)
        assert DutyCycleRequest(word=3, bits=2).ideal_duty == pytest.approx(1.0)

    def test_msb_lsb_split(self):
        request = DutyCycleRequest(word=0b10110, bits=5)
        assert request.msb(3) == 0b101
        assert request.lsb(2) == 0b10

    def test_validation(self):
        with pytest.raises(ValueError):
            DutyCycleRequest(word=4, bits=2)
        with pytest.raises(ValueError):
            DutyCycleRequest(word=0, bits=0)
        with pytest.raises(ValueError):
            DutyCycleRequest(word=1, bits=3).msb(0)
        with pytest.raises(ValueError):
            DutyCycleRequest(word=1, bits=3).lsb(4)


class TestCounterDPWM:
    def test_required_clock_frequency(self):
        config = CounterDPWMConfig(bits=13, switching_frequency_mhz=1.0)
        # Paper: 13-bit resolution at ~1 MHz switching needs a multi-GHz clock.
        assert config.counter_clock_frequency_mhz == pytest.approx(8192.0)

    @pytest.mark.parametrize("word", range(4))
    def test_two_bit_duties_match_figure_19(self, word):
        dpwm = CounterDPWM(CounterDPWMConfig(bits=2, switching_frequency_mhz=1.0))
        waveform = dpwm.generate(word)
        assert waveform.measured_duty == pytest.approx((word + 1) / 4, abs=0.01)

    def test_four_bit_duty_sweep(self):
        dpwm = CounterDPWM(CounterDPWMConfig(bits=4, switching_frequency_mhz=1.0))
        for word in (0, 5, 10, 15):
            waveform = dpwm.generate(word)
            assert waveform.measured_duty == pytest.approx((word + 1) / 16, abs=0.01)
            assert waveform.duty_error < 0.01

    def test_netlist_flop_count_scales_with_bits(self, synthesizer):
        small = CounterDPWM(CounterDPWMConfig(bits=4, switching_frequency_mhz=1.0))
        large = CounterDPWM(CounterDPWMConfig(bits=13, switching_frequency_mhz=1.0))
        assert (
            large.netlist().cell_counts()[CellKind.DFF]
            > small.netlist().cell_counts()[CellKind.DFF]
        )
        # Counter area grows only linearly with resolution.
        ratio = (
            synthesizer.synthesize(large.netlist()).total_area_um2
            / synthesizer.synthesize(small.netlist()).total_area_um2
        )
        assert ratio < 4.0

    def test_dynamic_power_scales_with_resolution(self):
        low = CounterDPWM(CounterDPWMConfig(bits=4, switching_frequency_mhz=1.0))
        high = CounterDPWM(CounterDPWMConfig(bits=8, switching_frequency_mhz=1.0))
        # The clock is 16x faster, so power must grow by about that much.
        assert high.dynamic_power_w() > 8 * low.dynamic_power_w()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CounterDPWMConfig(bits=0, switching_frequency_mhz=1.0)
        with pytest.raises(ValueError):
            CounterDPWMConfig(bits=4, switching_frequency_mhz=0.0)


class TestDelayLineDPWM:
    @pytest.mark.parametrize("word", range(4))
    def test_two_bit_duties_match_figure_21(self, word):
        dpwm = DelayLineDPWM(DelayLineDPWMConfig(bits=2, switching_frequency_mhz=1.0))
        waveform = dpwm.generate(word)
        assert waveform.measured_duty == pytest.approx((word + 1) / 4, abs=0.01)

    def test_three_bit_duty_sweep(self):
        dpwm = DelayLineDPWM(DelayLineDPWMConfig(bits=3, switching_frequency_mhz=2.0))
        for word in range(8):
            waveform = dpwm.generate(word)
            assert waveform.measured_duty == pytest.approx((word + 1) / 8, abs=0.01)

    def test_only_switching_clock_needed(self):
        dpwm = DelayLineDPWM(DelayLineDPWMConfig(bits=8, switching_frequency_mhz=1.0))
        assert dpwm.required_clock_frequency_mhz() == pytest.approx(1.0)

    def test_cell_count_is_exponential_in_bits(self):
        config = DelayLineDPWMConfig(bits=8, switching_frequency_mhz=1.0)
        assert config.num_cells == 256
        dpwm = DelayLineDPWM(config)
        assert dpwm.netlist().cell_counts()[CellKind.BUFFER] == 256

    def test_custom_cell_delays_shift_duty(self):
        # A line built from slow cells (uncalibrated, slow corner) overshoots
        # the requested duty -- the miscalibration of paper Figure 28.
        config = DelayLineDPWMConfig(bits=2, switching_frequency_mhz=1.0)
        slow_cells = [config.ideal_cell_delay_ps * 1.5] * config.num_cells
        dpwm = DelayLineDPWM(config, cell_delays_ps=slow_cells)
        waveform = dpwm.generate(0)
        assert waveform.measured_duty == pytest.approx(0.375, abs=0.01)

    def test_cell_delay_validation(self):
        config = DelayLineDPWMConfig(bits=2, switching_frequency_mhz=1.0)
        with pytest.raises(ValueError):
            DelayLineDPWM(config, cell_delays_ps=[1.0, 2.0])
        with pytest.raises(ValueError):
            DelayLineDPWM(config, cell_delays_ps=[1.0, 1.0, 1.0, 0.0])


class TestHybridDPWM:
    def test_paper_example_duty(self):
        # Paper Figure 23: duty word 10110 -> T3 selected -> 23/32 duty.
        dpwm = HybridDPWM(
            HybridDPWMConfig(msb_bits=3, lsb_bits=2, switching_frequency_mhz=1.0)
        )
        waveform = dpwm.generate(0b10110)
        assert waveform.measured_duty == pytest.approx(23 / 32, abs=0.005)

    def test_full_sweep_is_monotonic_and_accurate(self):
        dpwm = HybridDPWM(
            HybridDPWMConfig(msb_bits=3, lsb_bits=2, switching_frequency_mhz=1.0)
        )
        duties = [dpwm.generate(word).measured_duty for word in range(32)]
        assert duties == sorted(duties)
        for word, duty in enumerate(duties):
            assert duty == pytest.approx((word + 1) / 32, abs=0.005)

    def test_clock_and_area_compromise(self, synthesizer):
        # Paper section 2.2.3: the 5-bit hybrid needs an 8x clock (not 32x)
        # and 4 delay cells (not 32).
        hybrid = HybridDPWM(
            HybridDPWMConfig(msb_bits=3, lsb_bits=2, switching_frequency_mhz=1.0)
        )
        counter = CounterDPWM(CounterDPWMConfig(bits=5, switching_frequency_mhz=1.0))
        line = DelayLineDPWM(DelayLineDPWMConfig(bits=5, switching_frequency_mhz=1.0))
        assert hybrid.required_clock_frequency_mhz() == pytest.approx(8.0)
        assert counter.required_clock_frequency_mhz() == pytest.approx(32.0)
        assert hybrid.config.num_cells == 4
        assert line.config.num_cells == 32
        hybrid_area = synthesizer.synthesize(hybrid.netlist()).total_area_um2
        line_area = synthesizer.synthesize(line.netlist()).total_area_um2
        assert hybrid_area < line_area

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridDPWMConfig(msb_bits=0, lsb_bits=2, switching_frequency_mhz=1.0)
        with pytest.raises(ValueError):
            HybridDPWMConfig(msb_bits=3, lsb_bits=2, switching_frequency_mhz=-1.0)

    def test_dynamic_power_between_pure_architectures(self):
        hybrid = HybridDPWM(
            HybridDPWMConfig(msb_bits=4, lsb_bits=4, switching_frequency_mhz=1.0)
        )
        counter = CounterDPWM(CounterDPWMConfig(bits=8, switching_frequency_mhz=1.0))
        assert hybrid.dynamic_power_w() < counter.dynamic_power_w()


class TestArchitectureCrossChecks:
    """All three simulated architectures against the ideal quantizer.

    At matching resolution and zero variation (ideal cell delays), the
    counter, delay-line and hybrid DPWMs must realize the *same* staircase
    word for word.  The chapter-2 architectures use the paper's
    ``duty = (word + 1) / 2**n`` set-edge convention while
    :class:`IdealDPWM` uses the chapter-3 ``word / 2**n`` convention, so
    each simulated word ``w`` must land on the ideal quantizer's word
    ``w + 1`` (with the all-ones word reading 100 % duty).
    """

    BITS = 4

    @pytest.fixture(scope="class")
    def measured_duties(self):
        frequency = 1.0
        architectures = {
            "counter": CounterDPWM(
                CounterDPWMConfig(bits=self.BITS, switching_frequency_mhz=frequency)
            ),
            "delay_line": DelayLineDPWM(
                DelayLineDPWMConfig(bits=self.BITS, switching_frequency_mhz=frequency)
            ),
            "hybrid": HybridDPWM(
                HybridDPWMConfig(
                    msb_bits=2, lsb_bits=2, switching_frequency_mhz=frequency
                )
            ),
        }
        return {
            name: [dpwm.generate(word).measured_duty for word in range(1 << self.BITS)]
            for name, dpwm in architectures.items()
        }

    def test_all_architectures_match_the_ideal_staircase(self, measured_duties):
        ideal = IdealDPWM(bits=self.BITS)
        # Ideal staircase shifted by the one-word set-edge convention; the
        # top word's reset edge lands on the next period start = 100 % duty.
        expected = [
            ideal.duty_fraction(word + 1) for word in range(ideal.max_word)
        ] + [1.0]
        for name, duties in measured_duties.items():
            for word, duty in enumerate(duties):
                assert duty == pytest.approx(expected[word], abs=0.005), (name, word)

    def test_architectures_agree_word_for_word(self, measured_duties):
        counter = measured_duties["counter"]
        for name in ("delay_line", "hybrid"):
            for word, duty in enumerate(measured_duties[name]):
                assert duty == pytest.approx(counter[word], abs=0.005), (name, word)

    def test_every_staircase_is_strictly_monotonic(self, measured_duties):
        for name, duties in measured_duties.items():
            assert duties == sorted(duties), name
            assert len(set(duties)) == len(duties), name

"""Tests for process corners and operating conditions."""

from __future__ import annotations

import pytest

from repro.technology.corners import (
    NOMINAL_TEMPERATURE_C,
    NOMINAL_VDD_V,
    OperatingConditions,
    OperatingPointSweep,
    ProcessCorner,
    TemperatureGrade,
)


class TestProcessCorner:
    def test_paper_corner_spread_is_4x(self):
        assert (
            ProcessCorner.SLOW.delay_scale / ProcessCorner.FAST.delay_scale == 4.0
        )

    def test_typical_scale_is_unity(self):
        assert ProcessCorner.TYPICAL.delay_scale == 1.0

    def test_fast_is_half_typical(self):
        assert ProcessCorner.FAST.delay_scale == 0.5

    def test_slow_is_twice_typical(self):
        assert ProcessCorner.SLOW.delay_scale == 2.0

    def test_from_name_accepts_any_case(self):
        assert ProcessCorner.from_name("fast") is ProcessCorner.FAST
        assert ProcessCorner.from_name("SLOW") is ProcessCorner.SLOW
        assert ProcessCorner.from_name(" Typical ") is ProcessCorner.TYPICAL

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown process corner"):
            ProcessCorner.from_name("nominal")


class TestTemperatureGrade:
    def test_grades_cover_industrial_range(self):
        assert TemperatureGrade.COLD.celsius == -40.0
        assert TemperatureGrade.HOT.celsius == 85.0
        assert TemperatureGrade.JUNCTION_MAX.celsius > TemperatureGrade.HOT.celsius


class TestOperatingConditions:
    def test_default_is_nominal(self):
        conditions = OperatingConditions()
        assert conditions.corner is ProcessCorner.TYPICAL
        assert conditions.temperature_c == NOMINAL_TEMPERATURE_C
        assert conditions.vdd_v == NOMINAL_VDD_V
        assert conditions.delay_scale == pytest.approx(1.0)

    def test_corner_constructors(self):
        assert OperatingConditions.fast().corner is ProcessCorner.FAST
        assert OperatingConditions.slow().corner is ProcessCorner.SLOW
        assert OperatingConditions.typical().corner is ProcessCorner.TYPICAL

    def test_all_corners_returns_three_points(self):
        corners = OperatingConditions.all_corners()
        assert len(corners) == 3
        assert {point.corner for point in corners} == set(ProcessCorner)

    def test_higher_temperature_increases_delay(self):
        cold = OperatingConditions(temperature_c=0.0)
        hot = OperatingConditions(temperature_c=100.0)
        assert hot.delay_scale > cold.delay_scale

    def test_higher_vdd_decreases_delay(self):
        low = OperatingConditions(vdd_v=0.9)
        high = OperatingConditions(vdd_v=1.1)
        assert high.delay_scale < low.delay_scale

    def test_delay_scale_is_always_positive(self):
        extreme = OperatingConditions(
            corner=ProcessCorner.FAST, temperature_c=-55.0, vdd_v=3.0
        )
        assert extreme.delay_scale > 0.0

    def test_with_corner_preserves_other_fields(self):
        base = OperatingConditions(temperature_c=85.0, vdd_v=0.95)
        derived = base.with_corner(ProcessCorner.SLOW)
        assert derived.corner is ProcessCorner.SLOW
        assert derived.temperature_c == 85.0
        assert derived.vdd_v == 0.95

    def test_with_temperature_and_vdd(self):
        base = OperatingConditions.fast()
        assert base.with_temperature(85.0).temperature_c == 85.0
        assert base.with_vdd(1.05).vdd_v == 1.05
        assert base.with_temperature(85.0).corner is ProcessCorner.FAST

    def test_invalid_vdd_rejected(self):
        with pytest.raises(ValueError, match="supply voltage"):
            OperatingConditions(vdd_v=0.0)

    def test_out_of_range_temperature_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            OperatingConditions(temperature_c=200.0)

    def test_conditions_are_hashable_and_frozen(self):
        conditions = OperatingConditions()
        assert conditions in {conditions}
        with pytest.raises(AttributeError):
            conditions.vdd_v = 1.2  # type: ignore[misc]


class TestOperatingPointSweep:
    def test_default_sweep_covers_three_corners(self):
        sweep = OperatingPointSweep()
        assert len(sweep) == 3
        assert {point.corner for point in sweep} == set(ProcessCorner)

    def test_cartesian_product_size(self):
        sweep = OperatingPointSweep(
            temperatures_c=(0.0, 25.0, 85.0), vdds_v=(0.95, 1.0, 1.05)
        )
        assert len(sweep) == 3 * 3 * 3

    def test_sweep_order_is_deterministic(self):
        sweep_a = OperatingPointSweep(temperatures_c=(0.0, 85.0))
        sweep_b = OperatingPointSweep(temperatures_c=(0.0, 85.0))
        assert sweep_a.points == sweep_b.points

"""Tests for the analysis package (metrics, power, efficiency, reports)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.efficiency import (
    buck_efficiency_estimate,
    efficiency,
    linear_regulator_efficiency,
    power_loss_w,
)
from repro.analysis.metrics import (
    differential_nonlinearity,
    duty_cycle_error,
    integral_nonlinearity,
    is_monotonic,
    linearity_metrics,
    peak_to_peak_ripple,
    settling_time_s,
)
from repro.analysis.power import dynamic_power_w, leakage_power_w, netlist_dynamic_power_w
from repro.analysis.reports import format_series, format_table
from repro.technology.cells import CellKind
from repro.technology.netlist import Netlist


class TestLinearityMetrics:
    def test_perfect_ramp_has_zero_dnl_inl(self):
        ramp = np.arange(16, dtype=float)
        assert np.allclose(differential_nonlinearity(ramp), 0.0)
        assert np.allclose(integral_nonlinearity(ramp), 0.0)
        metrics = linearity_metrics(ramp)
        assert metrics.max_dnl_lsb == 0.0
        assert metrics.max_inl_lsb == 0.0
        assert metrics.monotonic
        assert metrics.distinct_levels == 16

    def test_missing_code_shows_as_dnl(self):
        curve = np.array([0.0, 1.0, 1.0, 3.0])  # repeated value then a jump
        dnl = differential_nonlinearity(curve, lsb=1.0)
        assert dnl[1] == pytest.approx(-1.0)
        assert dnl[2] == pytest.approx(1.0)

    def test_bowed_curve_shows_as_inl(self):
        codes = np.arange(32, dtype=float)
        bowed = codes + 2.0 * np.sin(np.pi * codes / 31)
        inl = integral_nonlinearity(bowed, lsb=1.0)
        assert np.max(np.abs(inl)) == pytest.approx(2.0, abs=0.1)

    def test_monotonicity(self):
        assert is_monotonic(np.array([0.0, 1.0, 1.0, 2.0]))
        assert not is_monotonic(np.array([0.0, 1.0, 0.5, 2.0]))
        assert not is_monotonic(np.array([0.0, 1.0, 1.0, 2.0]), strict=True)

    def test_degenerate_curves_rejected(self):
        with pytest.raises(ValueError):
            differential_nonlinearity(np.array([1.0]))
        with pytest.raises(ValueError):
            integral_nonlinearity(np.array([1.0, 1.0]))

    def test_duty_cycle_error(self):
        assert duty_cycle_error(0.52, 0.5) == pytest.approx(0.02)

    def test_ripple_uses_settled_tail(self):
        samples = np.concatenate([np.linspace(0, 1, 50), 0.9 + 0.01 * np.sin(np.arange(50))])
        assert peak_to_peak_ripple(samples) == pytest.approx(0.02, abs=0.005)

    def test_settling_time(self):
        times = np.linspace(0, 1e-6, 101)
        samples = np.where(times < 0.4e-6, 0.5, 0.9)
        settled_at = settling_time_s(times, samples, target=0.9, tolerance=0.01)
        assert settled_at == pytest.approx(0.4e-6, abs=1e-8)

    def test_settling_time_never_settles(self):
        times = np.linspace(0, 1e-6, 11)
        samples = np.full(11, 0.5)
        assert settling_time_s(times, samples, target=0.9) == float("inf")


class TestPowerModels:
    def test_dynamic_power_formula(self):
        # P = alpha * C * V^2 * f  (paper eq. 14)
        assert dynamic_power_w(1e-12, 1.0, 1e9, activity=1.0) == pytest.approx(1e-3)
        assert dynamic_power_w(1e-12, 2.0, 1e9, activity=0.5) == pytest.approx(2e-3)

    def test_dynamic_power_validation(self):
        with pytest.raises(ValueError):
            dynamic_power_w(-1.0, 1.0, 1e6)
        with pytest.raises(ValueError):
            dynamic_power_w(1e-12, 1.0, 1e6, activity=2.0)

    def test_netlist_power_scales_with_frequency(self, library):
        netlist = Netlist(name="block").add_cells(CellKind.DFF, 10)
        slow = netlist_dynamic_power_w(netlist, library, 1.0, 1e6)
        fast = netlist_dynamic_power_w(netlist, library, 1.0, 1e9)
        assert fast == pytest.approx(1000 * slow)

    def test_leakage_power(self, library):
        netlist = Netlist(name="block").add_cells(CellKind.BUFFER, 1000)
        expected = 1000 * library.leakage_nw(CellKind.BUFFER) * 1e-9
        assert leakage_power_w(netlist, library) == pytest.approx(expected)


class TestEfficiencyModels:
    def test_efficiency_and_loss_are_consistent(self):
        eta = efficiency(p_out_w=0.9, p_in_w=1.0)
        assert eta == pytest.approx(0.9)
        assert power_loss_w(0.9, eta) == pytest.approx(0.1)

    def test_linear_regulator_efficiency_bounded_by_ratio(self):
        eta = linear_regulator_efficiency(1.8, 0.9, 0.1)
        assert eta == pytest.approx(0.5)
        with_ground = linear_regulator_efficiency(1.8, 0.9, 0.1, i_ground_a=0.01)
        assert with_ground < eta

    def test_linear_regulator_validation(self):
        with pytest.raises(ValueError):
            linear_regulator_efficiency(1.0, 1.5, 0.1)
        with pytest.raises(ValueError):
            linear_regulator_efficiency(1.8, 0.9, 0.0)

    def test_buck_efficiency_beats_linear_at_large_stepdown(self):
        buck = buck_efficiency_estimate(1.8, 0.9, 0.5)
        linear = linear_regulator_efficiency(1.8, 0.9, 0.5)
        assert buck > linear

    def test_buck_efficiency_degrades_with_switching_frequency(self):
        slow = buck_efficiency_estimate(1.8, 0.9, 0.5, switching_frequency_hz=10e6)
        fast = buck_efficiency_estimate(1.8, 0.9, 0.5, switching_frequency_hz=1e9)
        assert fast < slow

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            efficiency(1.0, 0.0)
        with pytest.raises(ValueError):
            power_loss_w(1.0, 0.0)
        with pytest.raises(ValueError):
            buck_efficiency_estimate(1.0, 1.5, 0.1)


class TestReports:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bbb"], [[1, 2], [33, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series_subsamples(self):
        x = list(range(100))
        series = {"y": [float(v) for v in x]}
        text = format_series("x", x, series, max_rows=10)
        assert len(text.splitlines()) < 20
        assert text.splitlines()[-1].startswith("99")

    def test_format_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2, 3], {"y": [1.0, 2.0]})

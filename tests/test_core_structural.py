"""Tests for the event-driven (structural) proposed delay line.

These tests cross-check the structural model -- buffers, multiplexer,
synchronizer and controller built from simulation primitives -- against the
analytical cycle-accurate controller, the repository's stand-in for the
paper's RTL-vs-gate-level verification.
"""

from __future__ import annotations

import pytest

from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.core.structural import StructuralProposedDelayLine
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

LIBRARY = intel32_like_library()


def make_line(num_cells=64, buffers_per_cell=2, clock_period_ps=2_000.0, variation=None):
    return ProposedDelayLine(
        ProposedDelayLineConfig(
            num_cells=num_cells,
            buffers_per_cell=buffers_per_cell,
            clock_period_ps=clock_period_ps,
        ),
        library=LIBRARY,
        variation=variation,
    )


class TestStructuralLocking:
    @pytest.mark.parametrize("corner", list(ProcessCorner))
    def test_structural_lock_matches_analytical_model(self, corner):
        conditions = OperatingConditions(corner=corner)
        line = make_line()
        structural = StructuralProposedDelayLine(line, conditions)
        structural_result = structural.run_lock()
        analytical_result = ProposedController(line).lock(conditions)
        assert structural_result.locked
        # The structural controller sees the tap through a two-flop
        # synchronizer, so its locked count may overshoot by a couple of
        # cells; the two views must agree to within that latency.
        assert abs(structural_result.tap_sel - analytical_result.control_state) <= 3

    def test_locked_tap_brackets_half_period(self):
        conditions = OperatingConditions.typical()
        line = make_line()
        structural = StructuralProposedDelayLine(line, conditions)
        result = structural.run_lock()
        taps = line.tap_delays_ps(conditions)
        half = line.config.clock_period_ps / 2.0
        cell = float(line.cell_delays_ps(conditions)[0])
        locked_delay = float(taps[result.tap_sel - 1])
        assert result.locked
        # Within a few cells of the half-period boundary.
        assert abs(locked_delay - half) <= 3 * cell

    def test_search_history_is_a_monotonic_climb(self):
        line = make_line()
        structural = StructuralProposedDelayLine(line, OperatingConditions.fast())
        result = structural.run_lock()
        history = result.tap_sel_history
        assert result.locked
        climb = history[: history.index(max(history)) + 1]
        assert climb == sorted(climb)

    def test_lock_time_scales_with_locked_count(self):
        fast = StructuralProposedDelayLine(make_line(), OperatingConditions.fast())
        slow = StructuralProposedDelayLine(make_line(), OperatingConditions.slow())
        fast_result = fast.run_lock()
        slow_result = slow.run_lock()
        assert fast_result.cycles > slow_result.cycles

    def test_with_mismatch_still_locks(self):
        sample = VariationModel(random_sigma=0.05, seed=5).sample(64, 2)
        line = make_line(variation=sample)
        structural = StructuralProposedDelayLine(line, OperatingConditions.typical())
        result = structural.run_lock()
        assert result.locked

    def test_too_short_line_does_not_lock(self):
        # Half the clock period cannot be bracketed: controller saturates.
        line = make_line(num_cells=8, buffers_per_cell=1, clock_period_ps=10_000.0)
        structural = StructuralProposedDelayLine(line, OperatingConditions.fast())
        result = structural.run_lock(max_cycles=64)
        assert not result.locked
        assert result.tap_sel == 8

    def test_synchronizer_flags_setup_violations_eventually(self):
        # Sampling an asynchronous tap with a finite setup window produces
        # occasional violations over a long run -- the reason the two-flop
        # synchronizer exists (paper Figures 38-39).
        line = make_line()
        structural = StructuralProposedDelayLine(line, OperatingConditions.typical())
        structural.run_lock()
        assert structural.synchronizer.setup_violations >= 0  # counter exists

"""The streaming Monte-Carlo engine: sound statistics, chunk-proof streams.

Three fronts:

* the confidence intervals are statistically correct (cross-checked against
  scipy where available, plus structural properties via hypothesis),
* the streaming moments match the batch formulas regardless of chunking,
* the adaptive sampler stops for the right reasons and -- the load-bearing
  reproducibility contract -- draws the *same sample stream at any chunk
  size* when the chunk function keys instance randomness on the instance
  index.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc import (
    AdaptiveSampleResult,
    ConfidenceInterval,
    RunningMoments,
    SampleChunk,
    adaptive_sample,
    clopper_pearson_interval,
    interval_function,
    normal_ppf,
    wilson_interval,
)


class TestNormalPpf:
    def test_median_is_zero(self):
        assert normal_ppf(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        assert normal_ppf(0.975) == pytest.approx(-normal_ppf(0.025), abs=1e-12)

    def test_classic_z_values(self):
        assert normal_ppf(0.975) == pytest.approx(1.959963984540054, abs=1e-9)
        assert normal_ppf(0.995) == pytest.approx(2.5758293035489004, abs=1e-9)

    @pytest.mark.parametrize("quantile", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_out_of_range(self, quantile):
        with pytest.raises(ValueError):
            normal_ppf(quantile)

    def test_matches_scipy_across_the_range(self):
        stats = pytest.importorskip("scipy.stats")
        for quantile in np.linspace(1e-6, 1 - 1e-6, 101):
            assert normal_ppf(float(quantile)) == pytest.approx(
                stats.norm.ppf(quantile), abs=1e-9
            )


class TestIntervals:
    def test_wilson_known_value(self):
        # 198/200 at 95 %: the canonical worked example.
        interval = wilson_interval(198, 200)
        assert interval.lower == pytest.approx(0.96428, abs=1e-4)
        assert interval.upper == pytest.approx(0.99725, abs=1e-4)

    def test_clopper_pearson_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for successes, trials in [(0, 10), (1, 10), (5, 10), (9, 10), (10, 10),
                                  (198, 200), (17, 1000), (999, 1000)]:
            interval = clopper_pearson_interval(successes, trials)
            alpha = 0.05
            expected_lower = (
                0.0 if successes == 0
                else stats.beta.ppf(alpha / 2, successes, trials - successes + 1)
            )
            expected_upper = (
                1.0 if successes == trials
                else stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes)
            )
            assert interval.lower == pytest.approx(expected_lower, abs=1e-9)
            assert interval.upper == pytest.approx(expected_upper, abs=1e-9)

    @pytest.mark.parametrize("method", ["wilson", "clopper_pearson"])
    def test_all_passed_still_carries_uncertainty(self, method):
        interval = interval_function(method)(100, 100, 0.95)
        assert interval.upper == 1.0
        assert interval.lower < 1.0
        assert interval.half_width > 0.0

    @given(
        trials=st.integers(min_value=1, max_value=5000),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        confidence=st.floats(min_value=0.5, max_value=0.999),
        method=st.sampled_from(["wilson", "clopper_pearson"]),
    )
    @settings(max_examples=150, deadline=None)
    def test_interval_brackets_the_estimate(
        self, trials, fraction, confidence, method
    ):
        successes = round(fraction * trials)
        interval = interval_function(method)(successes, trials, confidence)
        assert 0.0 <= interval.lower <= successes / trials <= interval.upper <= 1.0

    @given(
        trials=st.integers(min_value=4, max_value=2000),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        method=st.sampled_from(["wilson", "clopper_pearson"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_samples_never_widen_the_interval(self, trials, fraction, method):
        # Scale (successes, trials) by 4 at the same observed proportion:
        # the interval must tighten (or stay equal).
        successes = round(fraction * trials)
        small = interval_function(method)(successes, trials, 0.95)
        large = interval_function(method)(4 * successes, 4 * trials, 0.95)
        assert large.half_width <= small.half_width + 1e-12

    def test_clopper_pearson_is_wider_than_wilson_in_the_interior(self):
        # Clopper-Pearson guarantees coverage by paying width; away from
        # the 0 %/100 % boundaries its interval is the wider of the two.
        for successes, trials in [(50, 64), (120, 128), (500, 1000)]:
            wilson = wilson_interval(successes, trials)
            exact = clopper_pearson_interval(successes, trials)
            assert exact.half_width >= wilson.half_width

    @pytest.mark.parametrize(
        "successes, trials", [(-1, 10), (11, 10), (0, 0), (1, -5)]
    )
    def test_rejects_bad_counts(self, successes, trials):
        with pytest.raises(ValueError):
            wilson_interval(successes, trials)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown interval method"):
            interval_function("wald")

    def test_confidence_interval_validates_bounds(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(lower=0.9, upper=0.1, confidence=0.95)


class TestRunningMoments:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_batch_formulas(self, values):
        moments = RunningMoments()
        for value in values:
            moments.push(value)
        array = np.asarray(values)
        scale = max(1.0, float(np.abs(array).max()) ** 2)
        assert moments.count == len(values)
        assert moments.mean == pytest.approx(array.mean(), abs=1e-9 * scale)
        assert moments.variance() == pytest.approx(array.var(), abs=1e-6 * scale)
        assert moments.minimum == array.min()
        assert moments.maximum == array.max()

    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        split=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunked_extend_matches_one_shot(self, values, split):
        split = min(split, len(values))
        chunked = RunningMoments()
        chunked.extend(values[:split])
        chunked.extend(values[split:])
        one_shot = RunningMoments()
        one_shot.extend(values)
        assert chunked.count == one_shot.count == len(values)
        assert chunked.mean == pytest.approx(one_shot.mean, abs=1e-9)
        assert chunked.variance() == pytest.approx(one_shot.variance(), abs=1e-6)
        assert chunked.minimum == one_shot.minimum
        assert chunked.maximum == one_shot.maximum

    def test_sample_variance_needs_two_points(self):
        moments = RunningMoments()
        moments.push(1.0)
        assert math.isnan(moments.variance(ddof=1))
        moments.push(2.0)
        assert moments.variance(ddof=1) == pytest.approx(0.5)

    def test_empty_extend_is_a_no_op(self):
        moments = RunningMoments()
        moments.extend([])
        assert moments.count == 0
        assert math.isnan(moments.summary()["mean"])


def _bernoulli_draw(seed: int, pass_rate: float):
    """A chunk function whose instance i randomness is keyed on i itself."""

    def draw(first_instance: int, count: int) -> SampleChunk:
        uniforms = np.array(
            [
                np.random.default_rng((seed, i)).uniform()
                for i in range(first_instance, first_instance + count)
            ]
        )
        return SampleChunk(
            passes={"yield": uniforms < pass_rate},
            values={"uniform": uniforms},
        )

    return draw


class TestAdaptiveSample:
    def test_high_yield_stops_on_precision_long_before_the_cap(self):
        result = adaptive_sample(
            _bernoulli_draw(seed=1, pass_rate=0.999),
            primary="yield",
            precision=0.02,
            chunk_size=64,
            max_samples=4096,
        )
        assert isinstance(result, AdaptiveSampleResult)
        assert result.stop_reason == "precision"
        assert result.trials < 4096 // 4
        assert result.interval.half_width <= 0.02
        assert result.trials == result.chunk_size * result.chunks

    def test_marginal_yield_exhausts_the_cap(self):
        result = adaptive_sample(
            _bernoulli_draw(seed=2, pass_rate=0.5),
            primary="yield",
            precision=0.001,
            chunk_size=32,
            max_samples=200,
        )
        assert result.stop_reason == "max_samples"
        assert result.trials == 200  # the final chunk is clipped to the cap
        assert result.chunks == math.ceil(200 / 32)

    def test_zero_precision_disables_early_stopping(self):
        result = adaptive_sample(
            _bernoulli_draw(seed=3, pass_rate=1.0),
            primary="yield",
            precision=0.0,
            chunk_size=16,
            max_samples=64,
        )
        assert result.stop_reason == "max_samples"
        assert result.trials == 64

    @given(chunk_size=st.integers(min_value=1, max_value=97))
    @settings(max_examples=30, deadline=None)
    def test_chunk_size_never_changes_the_sample_stream(self, chunk_size):
        # Run to a fixed cap with early stopping disabled: every chunking
        # must see exactly the same instances and therefore the same
        # successes and value moments.
        reference = adaptive_sample(
            _bernoulli_draw(seed=4, pass_rate=0.9),
            primary="yield",
            precision=0.0,
            chunk_size=160,
            max_samples=160,
        )
        chunked = adaptive_sample(
            _bernoulli_draw(seed=4, pass_rate=0.9),
            primary="yield",
            precision=0.0,
            chunk_size=chunk_size,
            max_samples=160,
        )
        assert chunked.trials == reference.trials == 160
        assert chunked.successes == reference.successes
        assert chunked.estimates == reference.estimates
        assert chunked.moments["uniform"].mean == pytest.approx(
            reference.moments["uniform"].mean, abs=1e-12
        )
        assert chunked.moments["uniform"].minimum == (
            reference.moments["uniform"].minimum
        )
        assert chunked.moments["uniform"].maximum == (
            reference.moments["uniform"].maximum
        )

    def test_min_samples_holds_off_the_stopping_rule(self):
        # With everything passing, one 8-sample chunk would not satisfy a
        # 0.2 half-width at 95 %, but 8 chunks would; min_samples forces
        # the engine to keep drawing regardless.
        result = adaptive_sample(
            _bernoulli_draw(seed=5, pass_rate=1.0),
            primary="yield",
            precision=0.2,
            chunk_size=8,
            max_samples=512,
            min_samples=64,
        )
        assert result.trials >= 64

    def test_secondary_statistics_ride_along(self):
        def draw(first_instance: int, count: int) -> SampleChunk:
            flags = np.ones(count, dtype=bool)
            return SampleChunk(
                passes={"primary": flags, "secondary": ~flags},
            )

        result = adaptive_sample(
            draw, primary="primary", precision=0.1, chunk_size=32,
            max_samples=128,
        )
        assert result.estimates["secondary"] == 0.0
        assert result.intervals["secondary"].lower == 0.0
        assert result.intervals["secondary"].upper < 1.0

    def test_clopper_pearson_method_is_honoured(self):
        wilson = adaptive_sample(
            _bernoulli_draw(seed=6, pass_rate=1.0),
            primary="yield", precision=0.02, chunk_size=64, max_samples=4096,
        )
        exact = adaptive_sample(
            _bernoulli_draw(seed=6, pass_rate=1.0),
            primary="yield", precision=0.02, chunk_size=64, max_samples=4096,
            method="clopper_pearson",
        )
        # The conservative interval needs more samples for the same target.
        assert exact.trials >= wilson.trials
        assert exact.method == "clopper_pearson"

    def test_missing_primary_statistic_is_an_error(self):
        def draw(first_instance: int, count: int) -> SampleChunk:
            return SampleChunk(passes={"other": np.ones(count, dtype=bool)})

        with pytest.raises(ValueError, match="no primary pass statistic"):
            adaptive_sample(
                draw, primary="yield", precision=0.1, max_samples=64,
            )

    def test_wrong_chunk_shape_is_an_error(self):
        def draw(first_instance: int, count: int) -> SampleChunk:
            return SampleChunk(passes={"yield": np.ones(count + 1, dtype=bool)})

        with pytest.raises(ValueError, match="shape"):
            adaptive_sample(
                draw, primary="yield", precision=0.1, max_samples=64,
            )

    def test_changing_statistics_mid_run_is_an_error(self):
        def draw(first_instance: int, count: int) -> SampleChunk:
            name = "yield" if first_instance == 0 else "renamed"
            return SampleChunk(
                passes={"yield": np.ones(count, dtype=bool), name: np.ones(count, dtype=bool)}
            )

        with pytest.raises(ValueError, match="changed mid-run"):
            adaptive_sample(
                draw, primary="yield", precision=0.0, chunk_size=8,
                max_samples=64,
            )

    def test_changing_value_streams_mid_run_is_an_error(self):
        # A value stream that silently vanishes would leave RunningMoments
        # covering only a subset of the samples; the engine must refuse.
        def draw(first_instance: int, count: int) -> SampleChunk:
            values = {"metric": np.zeros(count)} if first_instance == 0 else {}
            return SampleChunk(
                passes={"yield": np.ones(count, dtype=bool)}, values=values
            )

        with pytest.raises(ValueError, match="value streams changed mid-run"):
            adaptive_sample(
                draw, primary="yield", precision=0.0, chunk_size=8,
                max_samples=64,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"precision": -0.1},
            {"precision": 0.1, "max_samples": 0},
            {"precision": 0.1, "chunk_size": 0},
            {"precision": 0.1, "confidence": 1.0},
            {"precision": 0.1, "min_samples": 0},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            adaptive_sample(
                _bernoulli_draw(seed=7, pass_rate=1.0), primary="yield", **kwargs
            )

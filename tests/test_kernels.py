"""Tests for the kernel layer: backend registry and kernel equivalence.

Every kernel of the contract is property-tested against an independent
straightforward reference (python loops over instances), for every backend
that actually resolves in this environment -- on a numpy-only install that
is the reference backend itself; on a numba install the same tests bind
the JIT transcriptions to the numpy semantics under the documented
tolerance policy (:data:`repro.kernels.TOLERANCES`).
"""

from __future__ import annotations

import importlib.util
import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels.backend as backend_module
from repro.converter.buck import exact_interval_coefficients
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    TOLERANCES,
    KernelBackend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.sweep.cache import cell_key

NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

#: Backends that resolve to themselves here (numba drops out when absent).
BACKENDS = [name for name in available_backends() if get_backend(name).name == name]


class TestBackendRegistry:
    def test_default_is_the_numpy_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        backend = get_backend()
        assert backend.name == DEFAULT_BACKEND == "numpy"
        assert backend.compiled is False
        assert active_backend_name() == "numpy"

    def test_both_builtin_backends_are_registered(self):
        names = available_backends()
        assert "numpy" in names and "numba" in names

    def test_env_var_selects_the_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend_name() == "numba"
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert active_backend_name() == expected

    def test_explicit_name_wins_over_the_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend_name("numpy") == "numpy"
        assert get_backend("numpy").name == "numpy"

    def test_unknown_backend_raises_naming_the_registry(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel backend 'cuda'"):
            resolve_backend_name("cuda")
        monkeypatch.setenv(ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="numpy"):
            get_backend()

    def test_numba_selection_never_fails(self, monkeypatch, caplog):
        # Force a fresh build so the fallback path (and its log note) runs.
        monkeypatch.setattr(backend_module, "_INSTANCES", {})
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            backend = get_backend("numba")
        if NUMBA_AVAILABLE:
            assert backend.name == "numba" and backend.compiled
        else:
            assert backend.name == "numpy" and not backend.compiled
            assert "falling back to the 'numpy' reference backend" in caplog.text

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", backend_module._build_numpy)

    def test_custom_backend_registers_and_resolves(self, monkeypatch):
        monkeypatch.setattr(
            backend_module, "_FACTORIES", dict(backend_module._FACTORIES)
        )
        monkeypatch.setattr(backend_module, "_INSTANCES", {})

        def build() -> KernelBackend:
            reference = backend_module._numpy_kernels()
            return KernelBackend(name="custom", compiled=False, **reference)

        register_backend("custom", build)
        assert "custom" in available_backends()
        assert get_backend("custom").name == "custom"
        monkeypatch.setenv(ENV_VAR, "custom")
        assert active_backend_name() == "custom"

    def test_tolerance_policy_covers_exactly_the_kernel_contract(self):
        assert set(TOLERANCES) == set(KernelBackend.kernel_names())

    def test_cell_key_separates_backends(self):
        params = {"scheme": "proposed", "seed": 7}
        numpy_key = cell_key("fig15", params, fingerprint="f", backend="numpy")
        numba_key = cell_key("fig15", params, fingerprint="f", backend="numba")
        assert numpy_key != numba_key
        # No explicit backend: the key records the effective selection, so
        # it equals the explicit spelling of that same backend.
        default_key = cell_key("fig15", params, fingerprint="f")
        assert default_key == cell_key(
            "fig15", params, fingerprint="f", backend=active_backend_name()
        )


# --- per-kernel equivalence properties ------------------------------------

#: Moderate example counts: the suite runs these for every backend.
KERNEL_SETTINGS = settings(max_examples=25, deadline=None)

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def float_matrix(draw, rows, cols, elements=finite):
    data = draw(
        st.lists(
            st.lists(elements, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.asarray(data, dtype=float)


@st.composite
def increasing_taps(draw):
    """(instances, cells) strictly increasing cumulative tap delays."""
    instances = draw(st.integers(1, 5))
    cells = draw(st.integers(2, 8))
    increments = draw(float_matrix(instances, cells, elements=positive))
    return np.cumsum(increments, axis=1)


def assert_matches(name: str, result, expected) -> None:
    """Compare per the tolerance policy: 0.0 means bit-identity."""
    rtol = TOLERANCES[name]
    for got, want in zip(np.atleast_1d(result), np.atleast_1d(expected)):
        if rtol == 0.0:
            np.testing.assert_array_equal(got, want)
        else:
            np.testing.assert_allclose(got, want, rtol=rtol, atol=0.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelEquivalence:
    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_interval_coefficients(self, backend, data):
        n = data.draw(st.integers(1, 5))
        draw_row = lambda elems: np.asarray(  # noqa: E731
            data.draw(st.lists(elems, min_size=n, max_size=n)), dtype=float
        )
        bounded = st.floats(
            min_value=-20.0, max_value=-1e-3, allow_nan=False, allow_infinity=False
        )
        a, d = draw_row(bounded), draw_row(bounded)
        b, c = draw_row(finite), draw_row(finite)
        # Periods capped at 1: with |entries| <= 100 the exponent q*t stays
        # far from overflow, so the property never wanders into inf/nan.
        period = draw_row(
            st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
        )
        on_time = period * draw_row(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        result = get_backend(backend).interval_coefficients(
            a, b, c, d, on_time, period
        )
        expected = np.stack(
            np.broadcast_arrays(
                *exact_interval_coefficients(a, b, c, d, on_time),
                *exact_interval_coefficients(a, b, c, d, period - on_time),
            ),
            axis=-1,
        )
        assert result.shape == (n, 12)
        assert_matches("interval_coefficients", (result,), (expected,))

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_gather_coefficients(self, backend, data):
        slots_count = data.draw(st.integers(1, 4))
        variants = data.draw(st.integers(1, 5))
        table = np.stack(
            [data.draw(float_matrix(variants, 12)) for _ in range(slots_count)]
        )
        slots = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, slots_count - 1),
                    min_size=variants,
                    max_size=variants,
                )
            ),
            dtype=np.int64,
        )
        rows = np.arange(variants, dtype=np.int64)
        result = get_backend(backend).gather_coefficients(table, slots, rows)
        expected = np.stack([table[slots[i], i] for i in range(variants)])
        assert_matches("gather_coefficients", (result,), (expected,))

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_pid_update(self, backend, data):
        n = data.draw(st.integers(1, 5))
        draw_row = lambda elems: np.asarray(  # noqa: E731
            data.draw(st.lists(elems, min_size=n, max_size=n)), dtype=float
        )
        unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        error, previous = draw_row(finite), draw_row(finite)
        integral = draw_row(unit)
        kp, ki, kd = draw_row(unit), draw_row(unit), draw_row(unit)
        min_duty = draw_row(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
        max_duty = draw_row(st.floats(min_value=0.5, max_value=1.0, allow_nan=False))
        result = get_backend(backend).pid_update(
            error, integral, previous, kp, ki, kd, min_duty, max_duty
        )
        new_integral = np.clip(integral + ki * error, min_duty, max_duty)
        expected_duty = np.clip(
            new_integral + kp * error + kd * (error - previous), min_duty, max_duty
        )
        assert_matches("pid_update", result, (expected_duty, new_integral))

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_quantize_duty(self, backend, data):
        variants = data.draw(st.integers(1, 5))
        words = data.draw(st.integers(2, 16))
        levels = data.draw(
            float_matrix(
                variants,
                words,
                elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            )
        )
        commands = np.asarray(
            data.draw(
                st.lists(
                    st.floats(
                        min_value=-0.5,
                        max_value=1.5,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=variants,
                    max_size=variants,
                )
            ),
            dtype=float,
        )
        num_words = np.full(variants, words, dtype=np.int64)
        rows = np.arange(variants, dtype=np.int64)
        got_words, got_duties = get_backend(backend).quantize_duty(
            commands, levels, num_words, rows
        )
        clipped = np.clip(commands, 0.0, 1.0)
        expected_words = np.minimum(
            np.rint(clipped * words).astype(np.int64), words - 1
        )
        expected_duties = levels[rows, expected_words]
        assert_matches(
            "quantize_duty",
            (got_words, got_duties),
            (expected_words, expected_duties),
        )

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_apply_period_step(self, backend, data):
        n = data.draw(st.integers(1, 5))
        step = data.draw(float_matrix(n, 12))
        draw_row = lambda: np.asarray(  # noqa: E731
            data.draw(st.lists(finite, min_size=n, max_size=n)), dtype=float
        )
        current, voltage, drive = draw_row(), draw_row(), draw_row()
        result = get_backend(backend).apply_period_step(
            step, current, voltage, drive
        )
        on_i = step[:, 0] * current + step[:, 1] * voltage + step[:, 4] * drive
        on_v = step[:, 2] * current + step[:, 3] * voltage + step[:, 5] * drive
        expected = (
            step[:, 6] * on_i + step[:, 7] * on_v,
            step[:, 8] * on_i + step[:, 9] * on_v,
        )
        assert_matches("apply_period_step", result, expected)

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_proposed_lock(self, backend, data):
        taps = data.draw(increasing_taps())
        num_cells = taps.shape[1]
        half_period = data.draw(
            st.floats(min_value=0.0, max_value=float(taps.max()) * 1.5)
        )
        control, locked, locked_delay = get_backend(backend).proposed_lock(
            taps, half_period, num_cells
        )
        for i, row in enumerate(taps):
            count = int(np.count_nonzero(row <= half_period))
            expected_control = min(max(count, 1), num_cells)
            assert control[i] == expected_control
            assert locked[i] == (1 <= count <= num_cells - 1)
            assert locked_delay[i] == row[expected_control - 1]

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_proposed_transfer_delays(self, backend, data):
        taps = data.draw(increasing_taps())
        instances, num_cells = taps.shape
        max_word = data.draw(st.integers(1, 12))
        shift = data.draw(st.integers(0, 6))
        words = np.arange(1, max_word + 1, dtype=np.int64)
        tap_sel = np.asarray(
            data.draw(
                st.lists(
                    st.integers(1, num_cells), min_size=instances, max_size=instances
                )
            ),
            dtype=np.int64,
        )
        result = get_backend(backend).proposed_transfer_delays(
            taps, tap_sel, words, shift, num_cells
        )
        assert result.shape == (instances, max_word)
        for i in range(instances):
            for j, word in enumerate(words):
                sel = min((int(word) * int(tap_sel[i])) >> shift, num_cells - 1)
                expected = 0.0 if sel == 0 else taps[i, sel - 1]
                assert result[i, j] == expected

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_conventional_crossing(self, backend, data):
        totals = data.draw(increasing_taps())
        instances, steps_plus_one = totals.shape
        max_steps = steps_plus_one - 1
        margin = data.draw(
            float_matrix(instances, steps_plus_one, elements=positive)
        )
        last_but_one = totals - margin
        period = data.draw(
            st.floats(min_value=float(totals.min()) * 0.5,
                      max_value=float(totals.max()) * 1.5)
        )
        steps, locked, total_at_stop = get_backend(backend).conventional_crossing(
            totals, last_but_one, period, max_steps
        )
        for i in range(instances):
            reaching = [j for j in range(steps_plus_one) if totals[i, j] >= period]
            expected_step = reaching[0] if reaching else max_steps
            assert steps[i] == expected_step
            assert total_at_stop[i] == totals[i, expected_step]
            assert locked[i] == (
                last_but_one[i, expected_step] < period
                and totals[i, expected_step] >= period
            )

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_cell_delays_from_multipliers(self, backend, data):
        instances = data.draw(st.integers(1, 4))
        cells = data.draw(st.integers(1, 5))
        buffers = data.draw(st.integers(1, 6))
        multipliers = np.stack(
            [
                data.draw(float_matrix(cells, buffers, elements=positive))
                for _ in range(instances)
            ]
        )
        unit = data.draw(positive)
        result = get_backend(backend).cell_delays_from_multipliers(
            multipliers, unit
        )
        # Under 8 elements numpy sums sequentially, so the loop reference
        # is bit-identical (pairwise summation never kicks in).
        expected = np.empty((instances, cells))
        for i in range(instances):
            for j in range(cells):
                total = 0.0
                for k in range(buffers):
                    total += multipliers[i, j, k]
                expected[i, j] = total * unit
        assert_matches("cell_delays_from_multipliers", (result,), (expected,))

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_active_branch_delays(self, backend, data):
        instances = data.draw(st.integers(1, 4))
        cells = data.draw(st.integers(1, 5))
        buffers = data.draw(st.integers(1, 6))
        multipliers = np.stack(
            [
                data.draw(float_matrix(cells, buffers, elements=positive))
                for _ in range(instances)
            ]
        )
        active = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.integers(1, buffers), min_size=cells, max_size=cells
                    ),
                    min_size=instances,
                    max_size=instances,
                )
            ),
            dtype=np.int64,
        )
        unit = data.draw(positive)
        result = get_backend(backend).active_branch_delays(
            multipliers, active, unit
        )
        expected = np.empty((instances, cells))
        for i in range(instances):
            for j in range(cells):
                total = 0.0
                for k in range(int(active[i, j])):
                    total += multipliers[i, j, k]
                expected[i, j] = unit * total
        assert_matches("active_branch_delays", (result,), (expected,))

    @KERNEL_SETTINGS
    @given(data=st.data())
    def test_duty_tables_from_delays(self, backend, data):
        instances = data.draw(st.integers(1, 4))
        num_words = data.draw(st.integers(2, 10))
        delays = data.draw(
            float_matrix(instances, num_words - 1, elements=positive)
        )
        clock_period = data.draw(positive)
        result = get_backend(backend).duty_tables_from_delays(
            delays, clock_period, num_words
        )
        assert result.shape == (instances, num_words)
        for i in range(instances):
            assert result[i, 0] == 0.0
            for w in range(1, num_words):
                assert result[i, w] == min(delays[i, w - 1] / clock_period, 1.0)

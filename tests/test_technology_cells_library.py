"""Tests for standard-cell models and the calibrated library."""

from __future__ import annotations

import pytest

from repro.technology.cells import CellKind, StandardCell
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library


class TestStandardCell:
    def _cell(self, **overrides):
        base = dict(
            kind=CellKind.BUFFER,
            name="BUF_TEST",
            area_um2=1.0,
            delay_ps=40.0,
            leakage_nw=1.0,
            input_capacitance_ff=1.0,
        )
        base.update(overrides)
        return StandardCell(**base)

    def test_delay_scales_with_corner(self):
        cell = self._cell()
        assert cell.delay_at(OperatingConditions.fast()) == pytest.approx(20.0)
        assert cell.delay_at(OperatingConditions.typical()) == pytest.approx(40.0)
        assert cell.delay_at(OperatingConditions.slow()) == pytest.approx(80.0)

    def test_switching_energy_scales_with_vdd_squared(self):
        cell = self._cell(input_capacitance_ff=2.0)
        assert cell.switching_energy_fj(1.0) == pytest.approx(2.0)
        assert cell.switching_energy_fj(2.0) == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("area_um2", 0.0),
            ("area_um2", -1.0),
            ("delay_ps", -1.0),
            ("leakage_nw", -0.1),
            ("input_capacitance_ff", -0.5),
        ],
    )
    def test_invalid_characterization_rejected(self, field, value):
        with pytest.raises(ValueError):
            self._cell(**{field: value})


class TestIntel32LikeLibrary:
    def test_library_contains_all_needed_kinds(self, library):
        for kind in CellKind:
            assert kind in library, f"missing cell kind {kind}"

    def test_buffer_delay_matches_paper_design_example(self, library):
        # Paper section 4.2: 20 ps at the fast corner, 80 ps at the slow corner.
        assert library.buffer_delay_ps(OperatingConditions.fast()) == pytest.approx(20.0)
        assert library.buffer_delay_ps(OperatingConditions.slow()) == pytest.approx(80.0)
        assert library.buffer_delay_ps(OperatingConditions.typical()) == pytest.approx(40.0)

    def test_dff_is_much_larger_than_buffer(self, library):
        # The conventional scheme's area is dominated by its flip-flop-heavy
        # shift register; the calibration relies on DFF >> BUF.
        assert library.area(CellKind.DFF) > 5 * library.area(CellKind.BUFFER)

    def test_each_call_returns_independent_library(self):
        first = intel32_like_library()
        second = intel32_like_library()
        first.add_cell(
            StandardCell(
                kind=CellKind.BUFFER,
                name="BUF_HUGE",
                area_um2=100.0,
                delay_ps=40.0,
                leakage_nw=1.0,
                input_capacitance_ff=1.0,
            )
        )
        assert second.area(CellKind.BUFFER) != 100.0

    def test_unknown_cell_raises_key_error(self):
        empty = TechnologyLibrary(name="empty", feature_size_nm=32.0)
        with pytest.raises(KeyError, match="no cell of kind"):
            empty.cell(CellKind.BUFFER)

    def test_leakage_and_capacitance_accessors(self, library):
        assert library.leakage_nw(CellKind.DFF) > 0
        assert library.input_capacitance_ff(CellKind.MUX2) > 0

    def test_len_counts_cells(self, library):
        assert len(library) == len(CellKind)

    def test_delay_accessor_matches_cell(self, library):
        conditions = OperatingConditions.slow()
        assert library.delay(CellKind.MUX2, conditions) == pytest.approx(
            library.cell(CellKind.MUX2).delay_at(conditions)
        )

"""Tests for the proposed delay line and its controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.variation import VariationModel


def make_line(num_cells=256, buffers_per_cell=2, clock_period_ps=10_000.0, **kwargs):
    config = ProposedDelayLineConfig(
        num_cells=num_cells,
        buffers_per_cell=buffers_per_cell,
        clock_period_ps=clock_period_ps,
    )
    return ProposedDelayLine(config, **kwargs)


class TestProposedDelayLineConfig:
    def test_word_bits(self):
        assert make_line(num_cells=256).config.word_bits == 8
        assert make_line(num_cells=64).config.word_bits == 6

    def test_clock_frequency(self):
        assert make_line(clock_period_ps=10_000.0).config.clock_frequency_mhz == pytest.approx(100.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ProposedDelayLineConfig(num_cells=100, buffers_per_cell=2, clock_period_ps=1.0)

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            ProposedDelayLineConfig(num_cells=64, buffers_per_cell=0, clock_period_ps=1.0)
        with pytest.raises(ValueError):
            ProposedDelayLineConfig(num_cells=64, buffers_per_cell=1, clock_period_ps=0.0)


class TestProposedDelayLineDelays:
    def test_cell_delays_follow_corner(self, library):
        line = make_line(library=library)
        assert np.allclose(line.cell_delays_ps(OperatingConditions.fast()), 40.0)
        assert np.allclose(line.cell_delays_ps(OperatingConditions.typical()), 80.0)
        assert np.allclose(line.cell_delays_ps(OperatingConditions.slow()), 160.0)

    def test_tap_delays_are_cumulative_and_monotonic(self, library):
        line = make_line(library=library)
        taps = line.tap_delays_ps(OperatingConditions.typical())
        assert taps.shape == (256,)
        assert np.all(np.diff(taps) > 0)
        assert taps[0] == pytest.approx(80.0)
        assert taps[-1] == pytest.approx(256 * 80.0)

    def test_line_covers_clock_period_at_all_corners(self, library):
        # The design example's guarantee (paper eq. 36).
        line = make_line(library=library)
        for conditions in OperatingConditions.all_corners():
            assert line.covers_clock_period(conditions)

    def test_variation_sample_perturbs_taps(self, library):
        sample = VariationModel(random_sigma=0.05, seed=3).sample(256, 2)
        line = make_line(library=library, variation=sample)
        ideal = make_line(library=library)
        conditions = OperatingConditions.typical()
        assert not np.allclose(
            line.tap_delays_ps(conditions), ideal.tap_delays_ps(conditions)
        )
        # The total stays close to ideal because mismatch averages out.
        assert line.total_delay_ps(conditions) == pytest.approx(
            ideal.total_delay_ps(conditions), rel=0.02
        )

    def test_wrong_variation_shape_rejected(self, library):
        sample = VariationModel().sample(num_cells=64, buffers_per_cell=2)
        with pytest.raises(ValueError):
            make_line(num_cells=256, library=library, variation=sample)


class TestProposedDelayLineOutput:
    def test_zero_word_gives_zero_delay(self, library):
        line = make_line(library=library)
        assert line.output_delay_ps(0, 128, OperatingConditions.typical()) == 0.0

    def test_output_delay_uses_mapper(self, library):
        line = make_line(library=library)
        conditions = OperatingConditions.typical()
        # Typical corner: 62 cells lock to half the 10 ns period (62 * 80 ps
        # = 4.96 ns); word 128 should land near half the period.
        delay = line.output_delay_ps(128, 62, conditions)
        assert delay == pytest.approx(5_000.0, rel=0.05)

    def test_achieved_duty_tracks_requested(self, library):
        line = make_line(library=library)
        conditions = OperatingConditions.slow()
        tap_sel = ProposedController(line).lock(conditions).control_state
        for word in (32, 64, 128, 192, 255):
            requested = word / 256
            achieved = line.achieved_duty(word, tap_sel, conditions)
            assert achieved == pytest.approx(requested, abs=0.04)

    def test_netlist_block_names_match_paper_table(self, library):
        names = [child.name for child in make_line(library=library).netlist().children]
        assert names == [
            "Delay Line",
            "Output MUX",
            "Calibration MUX",
            "Controller",
            "Mapper",
        ]

    def test_netlist_buffer_count(self, library):
        from repro.technology.cells import CellKind

        netlist = make_line(library=library).netlist()
        assert netlist.find("Delay Line").cell_counts()[CellKind.BUFFER] == 512


class TestProposedController:
    @pytest.mark.parametrize(
        "corner, expected_tap_sel",
        [
            (ProcessCorner.FAST, 125),
            (ProcessCorner.TYPICAL, 62),
            (ProcessCorner.SLOW, 31),
        ],
    )
    def test_locks_to_expected_cell_count(self, library, corner, expected_tap_sel):
        line = make_line(library=library)
        result = ProposedController(line).lock(OperatingConditions(corner=corner))
        assert result.locked
        assert result.control_state == expected_tap_sel

    def test_locked_delay_brackets_half_period(self, library):
        line = make_line(library=library)
        controller = ProposedController(line)
        for conditions in OperatingConditions.all_corners():
            result = controller.lock(conditions)
            cell_delay = float(line.cell_delays_ps(conditions)[0])
            assert result.locked_delay_ps <= 5_000.0
            assert result.locked_delay_ps + cell_delay > 5_000.0

    def test_lock_time_scales_with_cell_count(self, library):
        line = make_line(library=library)
        controller = ProposedController(line)
        fast = controller.lock(OperatingConditions.fast())
        slow = controller.lock(OperatingConditions.slow())
        assert fast.lock_cycles > slow.lock_cycles
        assert fast.lock_cycles <= line.config.num_cells + controller.synchronizer_latency_cycles + 2

    def test_ideal_tap_sel_matches_locked_state(self, library):
        line = make_line(library=library)
        controller = ProposedController(line)
        for conditions in OperatingConditions.all_corners():
            result = controller.lock(conditions)
            ideal = controller.ideal_tap_sel(conditions)
            assert abs(result.control_state - ideal) <= 1

    def test_trace_records_monotonic_search_then_lock(self, library):
        line = make_line(library=library)
        result = ProposedController(line).lock(OperatingConditions.typical())
        states = result.trace.control_history()
        # Monotonic climb followed by at most one step back at lock.
        climb = states[:-1]
        assert climb == sorted(climb)
        assert result.trace.steps[-1].locked

    def test_saturation_when_line_too_short(self, library):
        # A line far too short for the clock period cannot bracket half of
        # it; the controller must saturate and report not-locked.
        line = make_line(
            num_cells=16, buffers_per_cell=1, clock_period_ps=100_000.0, library=library
        )
        result = ProposedController(line).lock(OperatingConditions.fast())
        assert not result.locked
        assert result.control_state == 16

    def test_temperature_drift_changes_lock(self, library):
        line = make_line(library=library)
        controller = ProposedController(line)
        cold = controller.lock(OperatingConditions(temperature_c=0.0))
        hot = controller.lock(OperatingConditions(temperature_c=110.0))
        # Hotter silicon is slower, so fewer cells fit in half the period.
        assert hot.control_state <= cold.control_state

    def test_continuous_tracking_follows_temperature(self, library):
        line = make_line(library=library)
        controller = ProposedController(line)
        schedule = [
            (0, OperatingConditions(temperature_c=25.0)),
            (400, OperatingConditions(temperature_c=110.0)),
        ]
        trace = controller.track(schedule, total_cycles=800, sample_every=16)
        assert len(trace) == 50
        early = trace.control_states[10]
        late = trace.control_states[-1]
        assert late <= early
        # After the initial acquisition ramp (first ~100 cycles) the locked
        # delay must stay within a couple of cells of half the period.
        settled_errors = [
            abs(delay - target) / target
            for cycle, delay, target in zip(
                trace.times_cycles, trace.locked_delays_ps, trace.targets_ps
            )
            if cycle >= 128
        ]
        assert max(settled_errors) < 0.1

    def test_track_requires_schedule(self, library):
        line = make_line(library=library)
        with pytest.raises(ValueError):
            ProposedController(line).track([], total_cycles=10)

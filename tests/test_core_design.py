"""Tests for the parameterized design procedure (paper section 4.2)."""

from __future__ import annotations

import pytest

from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.technology.corners import OperatingConditions


class TestDesignSpec:
    def test_period_from_frequency(self):
        assert DesignSpec(100.0, 6).clock_period_ps == pytest.approx(10_000.0)
        assert DesignSpec(50.0, 6).clock_period_ps == pytest.approx(20_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpec(0.0, 6)
        with pytest.raises(ValueError):
            DesignSpec(100.0, 0)


class TestConventionalDesign:
    def test_paper_design_example(self, spec_100mhz_6bit, library):
        design = design_conventional(spec_100mhz_6bit, library)
        # Paper section 4.2.1: 64 cells, 4 branches, 2 buffers per element.
        assert design.num_cells == 64
        assert design.branches == 4
        assert design.buffers_per_element == 2
        assert design.mux_inputs == 64
        assert design.max_delay_elements == 256

    def test_worst_case_delay_matches_paper(self, spec_100mhz_6bit, library):
        design = design_conventional(spec_100mhz_6bit, library)
        # Paper eq. 29: 256 elements x 40 ps = 10.24 ns at the fast corner.
        assert design.worst_case_total_delay_ps(library) == pytest.approx(10_240.0)
        assert design.guarantees_locking(library)

    def test_lower_frequency_needs_larger_elements(self, library):
        design_50 = design_conventional(DesignSpec(50.0, 6), library)
        design_200 = design_conventional(DesignSpec(200.0, 6), library)
        assert design_50.buffers_per_element > design_200.buffers_per_element

    def test_build_line_reflects_design(self, spec_100mhz_6bit, library):
        design = design_conventional(spec_100mhz_6bit, library)
        line = design.build_line(library=library)
        assert line.config.num_cells == 64
        assert line.config.branches == 4
        assert line.config.buffers_per_element == 2

    @pytest.mark.parametrize("frequency", [25.0, 50.0, 100.0, 200.0, 400.0])
    def test_locking_guaranteed_across_frequencies(self, frequency, library):
        design = design_conventional(DesignSpec(frequency, 6), library)
        assert design.guarantees_locking(library)


class TestProposedDesign:
    def test_paper_design_example(self, spec_100mhz_6bit, library):
        design = design_proposed(spec_100mhz_6bit, library)
        # Paper section 4.2.2: 256 cells of 2 buffers each.
        assert design.num_cells == 256
        assert design.buffers_per_cell == 2
        assert design.mux_inputs == 256

    def test_worst_case_delay_matches_paper(self, spec_100mhz_6bit, library):
        design = design_proposed(spec_100mhz_6bit, library)
        assert design.worst_case_total_delay_ps(library) == pytest.approx(10_240.0)
        assert design.guarantees_locking(library)

    @pytest.mark.parametrize(
        "frequency, expected_buffers",
        [(50.0, 4), (100.0, 2), (200.0, 1)],
    )
    def test_buffers_per_cell_across_frequencies(self, frequency, expected_buffers, library):
        # Paper Table 6: 4 / 2 / 1 buffers per cell at 50 / 100 / 200 MHz.
        design = design_proposed(DesignSpec(frequency, 6), library)
        assert design.buffers_per_cell == expected_buffers
        assert design.num_cells == 256

    def test_cell_count_is_power_of_two(self, library):
        for bits in range(3, 9):
            design = design_proposed(DesignSpec(100.0, bits), library)
            assert design.num_cells & (design.num_cells - 1) == 0

    def test_cell_count_scales_with_resolution(self, library):
        low = design_proposed(DesignSpec(100.0, 4), library)
        high = design_proposed(DesignSpec(100.0, 8), library)
        assert high.num_cells == 16 * low.num_cells

    @pytest.mark.parametrize("frequency", [25.0, 50.0, 100.0, 200.0, 400.0])
    def test_locking_guaranteed_across_frequencies(self, frequency, library):
        design = design_proposed(DesignSpec(frequency, 6), library)
        line = design.build_line(library=library)
        for conditions in OperatingConditions.all_corners():
            assert line.covers_clock_period(conditions)

    def test_build_line_reflects_design(self, spec_100mhz_6bit, library):
        design = design_proposed(spec_100mhz_6bit, library)
        line = design.build_line(library=library)
        assert line.config.num_cells == design.num_cells
        assert line.config.buffers_per_cell == design.buffers_per_cell
        assert line.config.clock_period_ps == pytest.approx(10_000.0)

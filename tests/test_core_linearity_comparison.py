"""Tests for transfer-curve extraction and the scheme comparison harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.comparison import compare_schemes
from repro.core.conventional import ShiftRegisterController, TuningOrder
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.linearity import transfer_curve
from repro.core.proposed import ProposedController
from repro.technology.corners import OperatingConditions
from repro.technology.variation import VariationModel


class TestTransferCurve:
    def test_proposed_curve_shape(self, proposed_line):
        conditions = OperatingConditions.typical()
        curve = transfer_curve(proposed_line, conditions)
        assert curve.scheme == "proposed"
        assert curve.input_words[0] == 1
        assert curve.input_words[-1] == 255
        assert curve.delays_ps.shape == curve.ideal_delays_ps.shape

    def test_proposed_curve_is_monotonic(self, proposed_line):
        curve = transfer_curve(proposed_line, OperatingConditions.fast())
        assert np.all(np.diff(curve.delays_ps) >= 0)

    def test_proposed_curve_tracks_ideal_line(self, proposed_line):
        conditions = OperatingConditions.slow()
        curve = transfer_curve(proposed_line, conditions)
        assert curve.max_error_fraction_of_period() < 0.05

    def test_explicit_tap_sel_matches_fresh_calibration(self, proposed_line):
        conditions = OperatingConditions.typical()
        tap_sel = ProposedController(proposed_line).lock(conditions).control_state
        explicit = transfer_curve(proposed_line, conditions, tap_sel=tap_sel)
        implicit = transfer_curve(proposed_line, conditions)
        assert np.allclose(explicit.delays_ps, implicit.delays_ps)

    def test_conventional_curve_shape(self, conventional_line):
        conditions = OperatingConditions.typical()
        curve = transfer_curve(conventional_line, conditions)
        assert curve.scheme == "conventional"
        assert curve.input_words[-1] == 63

    def test_conventional_explicit_levels(self, conventional_line):
        conditions = OperatingConditions.fast()
        steps = ShiftRegisterController(conventional_line).lock(conditions).control_state
        levels = conventional_line.levels_for_steps(steps)
        curve = transfer_curve(conventional_line, conditions, levels=levels)
        assert curve.delays_ps[-1] <= 10_000.0 * 1.05

    def test_scaled_delays(self, proposed_line):
        curve = transfer_curve(proposed_line, OperatingConditions.typical())
        scaled = curve.scaled_delays_ns(2.0)
        assert scaled == pytest.approx(curve.delays_ps * 2.0 / 1000.0)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            transfer_curve(object(), OperatingConditions.typical())  # type: ignore[arg-type]

    def test_metrics_are_finite(self, proposed_line):
        metrics = transfer_curve(proposed_line, OperatingConditions.typical()).metrics()
        assert np.isfinite(metrics.max_dnl_lsb)
        assert np.isfinite(metrics.max_inl_lsb)
        assert metrics.distinct_levels > 1


class TestLinearityClaims:
    def test_lower_frequency_more_linear_under_mismatch(self, library):
        # Paper section 4.3: more buffers per cell average out random
        # variation, so the 50 MHz configuration is more linear than the
        # 200 MHz one at the same corner.
        variation = VariationModel(random_sigma=0.05, gradient_peak=0.0, seed=99)
        conditions = OperatingConditions.fast()
        rms = {}
        for frequency in (50.0, 200.0):
            design = design_proposed(DesignSpec(frequency, 6), library)
            sample = variation.sample(design.num_cells, design.buffers_per_cell)
            line = design.build_line(library=library, variation=sample)
            curve = transfer_curve(line, conditions)
            rms[frequency] = curve.metrics().rms_inl_lsb
        assert rms[50.0] < rms[200.0]

    def test_slow_corner_has_fewer_distinct_levels(self, library, proposed_design):
        line = proposed_design.build_line(library=library)
        slow = transfer_curve(line, OperatingConditions.slow()).metrics()
        fast = transfer_curve(line, OperatingConditions.fast()).metrics()
        # Paper Figure 50: plateaus at the slow corner (fewer taps in use).
        assert slow.distinct_levels < fast.distinct_levels

    def test_sequential_tuning_less_linear_than_distributed(self, library):
        # Paper Figures 41-42.
        spec = DesignSpec(100.0, 6)
        conditions = OperatingConditions.typical()
        errors = {}
        for order in (TuningOrder.SEQUENTIAL, TuningOrder.DISTRIBUTED):
            line = design_conventional(spec, library).build_line(
                library=library, tuning_order=order
            )
            curve = transfer_curve(line, conditions)
            errors[order] = curve.max_error_fraction_of_period()
        assert errors[TuningOrder.SEQUENTIAL] > errors[TuningOrder.DISTRIBUTED]


class TestSchemeComparison:
    @pytest.fixture(scope="class")
    def comparison(self, library):
        return compare_schemes(DesignSpec(100.0, 6), library=library)

    def test_proposed_wins_area(self, comparison):
        # Paper Table 5: 1337 vs 2330 um^2 (ratio ~1.74).
        assert comparison.proposed_wins_area
        assert 1.5 < comparison.area_ratio < 2.0

    def test_proposed_wins_linearity(self, comparison):
        assert comparison.proposed_wins_linearity

    def test_proposed_wins_calibration_time(self, comparison):
        assert comparison.proposed_wins_calibration_time

    def test_preliminary_rows_cover_paper_criteria(self, comparison):
        criteria = [row[0] for row in comparison.preliminary_rows()]
        assert "Delay cell" in criteria
        assert "Linearity" in criteria
        assert "Mapper / extra MUX" in criteria

    def test_area_reports_have_expected_blocks(self, comparison):
        assert set(comparison.proposed_area.distribution()) == {
            "Delay Line",
            "Output MUX",
            "Calibration MUX",
            "Controller",
            "Mapper",
        }
        assert set(comparison.conventional_area.distribution()) == {
            "Delay Line",
            "Output MUX",
            "Controller",
        }

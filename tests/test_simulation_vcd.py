"""Tests for the VCD exporter."""

from __future__ import annotations

import pytest

from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.simulation.vcd import dump_vcd, traces_to_vcd
from repro.simulation.waveform import WaveformTrace


def make_trace(name: str, points) -> WaveformTrace:
    trace = WaveformTrace(name=name)
    for time_ps, value in points:
        trace.record(time_ps, value)
    return trace


class TestTracesToVcd:
    def test_header_and_definitions(self):
        trace = make_trace("clk", [(0.0, 1), (50.0, 0)])
        text = traces_to_vcd([trace])
        assert "$timescale 1ps $end" in text
        assert "$var wire 1 ! clk $end" in text
        assert "$enddefinitions $end" in text

    def test_scalar_value_changes_in_time_order(self):
        trace = make_trace("clk", [(0.0, 1), (50.0, 0), (100.0, 1)])
        text = traces_to_vcd([trace])
        body = text.split("$enddefinitions $end")[1]
        assert body.index("#0") < body.index("#50") < body.index("#100")
        assert "1!" in body and "0!" in body

    def test_vector_signals_use_binary_format(self):
        trace = make_trace("cnt", [(0.0, 0), (10.0, 5)])
        text = traces_to_vcd([trace])
        assert "$var wire 3 ! cnt $end" in text
        assert "b101 !" in text

    def test_multiple_traces_share_timeline(self):
        clk = make_trace("clk", [(0.0, 1), (50.0, 0)])
        out = make_trace("out", [(0.0, 1), (25.0, 0)])
        text = traces_to_vcd([clk, out])
        body = text.split("$enddefinitions $end")[1]
        assert body.count("#0") == 1  # shared timestamp emitted once
        assert "#25" in body and "#50" in body

    def test_duplicate_names_rejected(self):
        trace = make_trace("clk", [(0.0, 1)])
        with pytest.raises(ValueError):
            traces_to_vcd([trace, make_trace("clk", [(0.0, 0)])])

    def test_dump_vcd_writes_file(self, tmp_path):
        trace = make_trace("clk", [(0.0, 1), (10.0, 0)])
        path = dump_vcd([trace], tmp_path / "wave.vcd")
        assert path.exists()
        assert "$enddefinitions" in path.read_text()

    def test_dpwm_waveform_round_trip(self, tmp_path):
        # End-to-end: simulate a DPWM and dump its waveforms.
        dpwm = CounterDPWM(CounterDPWMConfig(bits=2, switching_frequency_mhz=1.0))
        waveform = dpwm.generate(1)
        traces = [waveform.trace, *waveform.support_traces.values()]
        path = dump_vcd(traces, tmp_path / "dpwm.vcd")
        content = path.read_text()
        assert "dpwm_out" in content
        assert "cnt" in content
        assert content.count("$var wire") == len(traces)

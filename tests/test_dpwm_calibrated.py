"""Tests for the calibrated delay-line DPWM wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.technology.corners import OperatingConditions


class TestCalibratedProposedDPWM:
    @pytest.fixture()
    def dpwm(self, proposed_line):
        return CalibratedDelayLineDPWM(proposed_line, OperatingConditions.typical())

    def test_scheme_and_word_width(self, dpwm):
        assert dpwm.scheme == "proposed"
        assert dpwm.word_bits == 8
        assert dpwm.max_word == 255

    def test_duty_fraction_tracks_word(self, dpwm):
        for word in (16, 64, 128, 200, 255):
            assert dpwm.duty_fraction(word) == pytest.approx(word / 256, abs=0.03)

    def test_zero_word_gives_zero_duty(self, dpwm):
        assert dpwm.duty_fraction(0) == 0.0

    def test_duty_word_for_round_trip(self, dpwm):
        for target in (0.1, 0.25, 0.5, 0.75, 0.99):
            word = dpwm.duty_word_for(target)
            assert 0 <= word <= dpwm.max_word
            assert dpwm.duty_fraction(word) == pytest.approx(target, abs=0.03)

    def test_duty_word_for_clamps(self, dpwm):
        assert dpwm.duty_word_for(-0.5) == 0
        assert dpwm.duty_word_for(1.5) == dpwm.max_word

    def test_recalibration_across_corners_keeps_duty(self, proposed_line):
        dpwm = CalibratedDelayLineDPWM(proposed_line, OperatingConditions.fast())
        fast_duty = dpwm.duty_fraction(128)
        dpwm.recalibrate(OperatingConditions.slow())
        slow_duty = dpwm.duty_fraction(128)
        # The calibration keeps the 50 % request near 50 % at both corners.
        assert fast_duty == pytest.approx(0.5, abs=0.02)
        assert slow_duty == pytest.approx(0.5, abs=0.02)

    def test_uncalibrated_would_be_wrong(self, proposed_line):
        # Sanity check of the premise: the same *tap* (not word) gives very
        # different duty at different corners without the mapper.
        fast_taps = proposed_line.tap_delays_ps(OperatingConditions.fast())
        slow_taps = proposed_line.tap_delays_ps(OperatingConditions.slow())
        period = proposed_line.config.clock_period_ps
        assert slow_taps[127] / period > 2 * fast_taps[127] / period

    def test_waveform_generation(self, dpwm):
        waveform = dpwm.generate(128, periods=3)
        assert waveform.measured_duty == pytest.approx(0.5, abs=0.03)
        assert waveform.architecture == "calibrated-proposed"

    def test_out_of_range_word_rejected(self, dpwm):
        with pytest.raises(ValueError):
            dpwm.reset_delay_ps(256)
        with pytest.raises(ValueError):
            dpwm.duty_fraction(256)
        with pytest.raises(ValueError):
            dpwm.duty_fraction(-1)

    def test_duty_table_matches_reset_delays(self, dpwm):
        # The array form is the same arithmetic as the per-word path: the
        # reset delay as a fraction of the period, clamped at 100 %.
        table = dpwm.duty_table()
        assert table.shape == (dpwm.max_word + 1,)
        assert table[0] == 0.0
        for word in (1, 16, 100, 255):
            expected = min(
                dpwm.reset_delay_ps(word) / dpwm.switching_period_ps, 1.0
            )
            assert table[word] == expected
            assert dpwm.duty_fraction(word) == expected

    def test_duty_table_refreshes_on_recalibration(self, proposed_line):
        dpwm = CalibratedDelayLineDPWM(proposed_line, OperatingConditions.fast())
        fast_table = dpwm.duty_table().copy()
        dpwm.recalibrate(OperatingConditions.slow())
        slow_table = dpwm.duty_table()
        assert not np.array_equal(fast_table, slow_table)
        # Both calibrations keep the mid-scale word near 50 % duty.
        assert slow_table[128] == pytest.approx(0.5, abs=0.02)


class TestCalibratedConventionalDPWM:
    @pytest.fixture()
    def dpwm(self, conventional_line):
        return CalibratedDelayLineDPWM(conventional_line, OperatingConditions.typical())

    def test_scheme_and_word_width(self, dpwm):
        assert dpwm.scheme == "conventional"
        assert dpwm.word_bits == 6
        assert dpwm.max_word == 63

    def test_duty_fraction_tracks_word(self, dpwm):
        for word in (8, 16, 32, 48, 63):
            assert dpwm.duty_fraction(word) == pytest.approx(word / 64, abs=0.05)

    def test_recalibrate_at_fast_corner(self, conventional_line):
        dpwm = CalibratedDelayLineDPWM(conventional_line, OperatingConditions.fast())
        assert dpwm.duty_fraction(32) == pytest.approx(0.5, abs=0.05)

    def test_duty_table_matches_reset_delays(self, dpwm):
        table = dpwm.duty_table()
        assert table.shape == (dpwm.max_word + 1,)
        for word in range(dpwm.max_word + 1):
            expected = min(
                dpwm.reset_delay_ps(word) / dpwm.switching_period_ps, 1.0
            )
            assert table[word] == expected

    def test_unsupported_line_type_rejected(self):
        with pytest.raises(TypeError):
            CalibratedDelayLineDPWM(object())  # type: ignore[arg-type]

"""Tests for the process-variation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.technology.variation import VariationModel, VariationSample


class TestVariationModel:
    def test_ideal_model_has_unity_multipliers(self):
        sample = VariationModel.ideal().sample(num_cells=16, buffers_per_cell=2)
        assert np.allclose(sample.multipliers, 1.0)

    def test_sampling_is_deterministic_for_same_seed_and_instance(self):
        model = VariationModel(seed=7)
        first = model.sample(32, 2, instance=3)
        second = model.sample(32, 2, instance=3)
        assert np.array_equal(first.multipliers, second.multipliers)

    def test_different_instances_differ(self):
        model = VariationModel(seed=7)
        first = model.sample(32, 2, instance=0)
        second = model.sample(32, 2, instance=1)
        assert not np.array_equal(first.multipliers, second.multipliers)

    def test_different_seeds_differ(self):
        first = VariationModel(seed=1).sample(32, 2)
        second = VariationModel(seed=2).sample(32, 2)
        assert not np.array_equal(first.multipliers, second.multipliers)

    def test_shape_matches_request(self):
        sample = VariationModel().sample(num_cells=64, buffers_per_cell=4)
        assert sample.multipliers.shape == (64, 4)
        assert sample.num_cells == 64
        assert sample.buffers_per_cell == 4

    def test_multipliers_are_strictly_positive(self):
        sample = VariationModel(random_sigma=0.3).sample(256, 1)
        assert np.all(sample.multipliers > 0)

    def test_mean_multiplier_is_near_unity(self):
        sample = VariationModel(random_sigma=0.04, gradient_peak=0.0).sample(512, 4)
        assert sample.multipliers.mean() == pytest.approx(1.0, abs=0.01)

    def test_gradient_only_model_is_smooth_and_bounded(self):
        model = VariationModel(random_sigma=0.0, gradient_peak=0.02)
        sample = model.sample(100, 1)
        cells = sample.cell_multipliers()
        assert np.all(np.abs(cells - 1.0) <= 0.02 + 1e-12)
        # Monotone over the half-cosine gradient.
        assert np.all(np.diff(cells) <= 1e-12)

    def test_more_buffers_per_cell_reduce_cell_spread(self):
        # The paper's explanation for better linearity at low frequency:
        # random per-buffer variation averages out within larger cells.
        model = VariationModel(random_sigma=0.05, gradient_peak=0.0, seed=11)
        narrow = model.sample(256, 1).cell_multipliers().std()
        wide = model.sample(256, 4).cell_multipliers().std()
        assert wide < narrow

    def test_cell_delays_scale_with_buffer_delay(self):
        sample = VariationModel.ideal().sample(8, 3)
        delays = sample.cell_delays_ps(buffer_delay_ps=40.0)
        assert np.allclose(delays, 120.0)

    @pytest.mark.parametrize("num_cells, buffers", [(0, 1), (4, 0), (-1, 2)])
    def test_invalid_shapes_rejected(self, num_cells, buffers):
        with pytest.raises(ValueError):
            VariationModel().sample(num_cells, buffers)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(random_sigma=-0.1)

    def test_negative_gradient_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(gradient_peak=-0.1)


class TestVariationSample:
    def test_cell_multipliers_average_buffers(self):
        multipliers = np.array([[1.0, 3.0], [2.0, 2.0]])
        sample = VariationSample(multipliers=multipliers)
        assert np.allclose(sample.cell_multipliers(), [2.0, 2.0])

    def test_cell_delays_sum_buffers(self):
        multipliers = np.array([[1.0, 1.0], [0.5, 1.5]])
        sample = VariationSample(multipliers=multipliers)
        assert np.allclose(sample.cell_delays_ps(10.0), [20.0, 20.0])

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer


@pytest.fixture(scope="session")
def library():
    """The calibrated 32 nm-class library (shared, treated as read-only)."""
    return intel32_like_library()


@pytest.fixture(scope="session")
def synthesizer(library):
    return Synthesizer(library=library)


@pytest.fixture(scope="session")
def spec_100mhz_6bit():
    """The paper's headline specification: 100 MHz, 6-bit resolution."""
    return DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)


@pytest.fixture(scope="session")
def proposed_design(spec_100mhz_6bit, library):
    return design_proposed(spec_100mhz_6bit, library)


@pytest.fixture(scope="session")
def conventional_design(spec_100mhz_6bit, library):
    return design_conventional(spec_100mhz_6bit, library)


@pytest.fixture()
def proposed_line(proposed_design, library):
    return proposed_design.build_line(library=library)


@pytest.fixture()
def conventional_line(conventional_design, library):
    return conventional_design.build_line(library=library)


@pytest.fixture(scope="session")
def all_corners():
    return OperatingConditions.all_corners()

"""Tests for the sweep subsystem: grids, content-addressed cache, orchestration.

The cache-correctness properties the orchestrator's contract rests on are
covered here: corrupted or partial entries are discarded and transparently
recomputed, and any change to the seed, the parameter cell or the code
fingerprint misses the cache (hypothesis property tests).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.base import accepts_sweep
from repro.sweep import (
    MISS,
    ParameterGrid,
    ResultCache,
    SweepConfig,
    SweepOrchestrator,
    canonical_json,
    cell_key,
    code_fingerprint,
    jsonable,
    sweep_map,
)

# --- module-level cell functions (picklable into pool workers) -------------

#: In-process invocation counter for the serial cache tests.
CALLS = {"count": 0}


def counting_cell(params: dict) -> dict:
    CALLS["count"] += 1
    return {"x": params["x"], "computed": True}


def double_cell(params: dict) -> dict:
    return {"doubled": params["x"] * 2}


def numpy_cell(params: dict) -> dict:
    return {
        "scalar": np.float64(params["x"]),
        "array": np.arange(3) * params["x"],
        "nested": {"flag": np.bool_(True)},
    }


#: JSON scalars usable as axis values / cell parameters.
scalars = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=8), scalars, min_size=1, max_size=5
)


class TestParameterGrid:
    def test_iterates_in_nested_loop_order(self):
        grid = ParameterGrid(a=("x", "y"), b=(1, 2))
        assert list(grid) == [
            {"a": "x", "b": 1},
            {"a": "x", "b": 2},
            {"a": "y", "b": 1},
            {"a": "y", "b": 2},
        ]

    def test_len_is_cross_product_size(self):
        assert len(ParameterGrid(a=(1, 2), b=(1, 2, 3), c=("u",))) == 6

    def test_cells_adds_shared_extras(self):
        cells = ParameterGrid(a=(1, 2)).cells(seed=7)
        assert cells == [{"a": 1, "seed": 7}, {"a": 2, "seed": 7}]

    def test_rejects_no_axes(self):
        with pytest.raises(ValueError, match="at least one axis"):
            ParameterGrid()

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterGrid(a=())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParameterGrid(a=(1, 1))

    def test_rejects_non_scalar_values(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            ParameterGrid(a=((1, 2),))


class TestCellKey:
    def test_deterministic(self):
        params = {"scheme": "proposed", "frequency_mhz": 100.0, "seed": 7}
        assert cell_key("fig", params) == cell_key("fig", params)

    def test_independent_of_dict_order(self):
        assert cell_key("fig", {"a": 1, "b": 2}) == cell_key("fig", {"b": 2, "a": 1})

    def test_experiment_id_enters_the_key(self):
        assert cell_key("fig_a", {"x": 1}) != cell_key("fig_b", {"x": 1})

    def test_fingerprint_enters_the_key(self):
        params = {"x": 1}
        assert cell_key("fig", params, fingerprint="aaa") != cell_key(
            "fig", params, fingerprint="bbb"
        )

    def test_code_fingerprint_is_stable_hex(self):
        first, second = code_fingerprint(), code_fingerprint()
        assert first == second
        assert len(first) == 64
        int(first, 16)

    @given(params=param_dicts, seeds=st.tuples(st.integers(), st.integers()))
    def test_changed_seed_misses(self, params, seeds):
        seed_a, seed_b = seeds
        key_a = cell_key("fig", {**params, "seed": seed_a})
        key_b = cell_key("fig", {**params, "seed": seed_b})
        assert (key_a == key_b) == (seed_a == seed_b)

    @given(
        params=param_dicts,
        name=st.text(min_size=1, max_size=8),
        values=st.tuples(scalars, scalars),
    )
    def test_changed_parameter_cell_misses(self, params, name, values):
        value_a, value_b = values
        key_a = cell_key("fig", {**params, name: value_a})
        key_b = cell_key("fig", {**params, name: value_b})
        # Canonical JSON equality is the cache's notion of "same cell":
        # distinct values must produce distinct keys.
        same = canonical_json(value_a) == canonical_json(value_b)
        assert (key_a == key_b) == same


class TestResultCache:
    def test_store_then_load_roundtrips(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, {"value": 1.5}, params={"x": 1})
        assert cache.load("fig", key) == {"value": 1.5}

    def test_absent_entry_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).load("fig", "0" * 64) is MISS

    def test_null_payload_is_a_hit(self, tmp_path):
        # A legitimately-null payload must not read back as a miss.
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, None)
        assert cache.load("fig", key) is None
        assert cache.load("fig", key) is not MISS

    def test_store_leaves_no_temporaries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fig", "a" * 64, {"v": 1})
        assert [p.name for p in (tmp_path / "fig").iterdir()] == [f"{'a' * 64}.json"]

    @given(garbage=st.binary(max_size=200))
    @settings(max_examples=25)
    def test_corrupted_entry_discarded(self, tmp_path_factory, garbage):
        # Whatever bytes land in an entry file -- truncation, partial
        # writes, random corruption -- an invalid entry reads as a miss and
        # is deleted so the recompute can replace it.
        tmp_path = tmp_path_factory.mktemp("cache")
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        path = cache.entry_path("fig", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(garbage)
        assert cache.load("fig", key) is MISS
        assert not path.exists()

    def test_partial_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, {"value": 1})
        path = cache.entry_path("fig", key)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.load("fig", key) is MISS
        assert not path.exists()

    def test_tampered_key_echo_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, {"value": 1})
        path = cache.entry_path("fig", key)
        entry = json.loads(path.read_text())
        entry["key"] = "f" * 64
        path.write_text(json.dumps(entry))
        assert cache.load("fig", key) is MISS
        assert not path.exists()

    def test_prune_reclaims_stale_fingerprint_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        current_key = cell_key("fig", {"x": 1})
        cache.store("fig", current_key, {"value": 1})
        # Simulate an entry written by an older version of the sources.
        stale_key = cell_key("fig", {"x": 2}, fingerprint="old" * 16)
        cache.store("fig", stale_key, {"value": 2})
        stale_path = cache.entry_path("fig", stale_key)
        entry = json.loads(stale_path.read_text())
        entry["fingerprint"] = "old" * 16
        stale_path.write_text(json.dumps(entry))

        assert cache.prune() == 1
        assert not stale_path.exists()
        assert cache.load("fig", current_key) == {"value": 1}
        # Idempotent: nothing left to reclaim.
        assert cache.prune() == 0

    def test_prune_also_reclaims_unreadable_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.entry_path("fig", "0" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ corrupted")
        assert cache.prune() == 1
        assert not path.exists()

    def test_unknown_format_version_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, {"value": 1})
        path = cache.entry_path("fig", key)
        entry = json.loads(path.read_text())
        entry["format"] = 999
        path.write_text(json.dumps(entry))
        assert cache.load("fig", key) is MISS

    def test_tampered_payload_discarded(self, tmp_path):
        # A tampered payload inside an otherwise-valid wrapper fails the
        # checksum and reads as a miss (then recomputes).
        cache = ResultCache(tmp_path)
        key = cell_key("fig", {"x": 1})
        cache.store("fig", key, {"value": 1.0})
        path = cache.entry_path("fig", key)
        entry = json.loads(path.read_text())
        entry["payload"] = {"value": 99.0}
        path.write_text(json.dumps(entry))
        assert cache.load("fig", key) is MISS
        assert not path.exists()


class TestOrchestrator:
    def test_serial_map_without_orchestrator(self):
        payloads = sweep_map(
            double_cell, [{"x": 1}, {"x": 4}], experiment_id="fig"
        )
        assert payloads == [{"doubled": 2}, {"doubled": 8}]

    def test_payloads_are_normalized_json(self):
        [payload] = sweep_map(numpy_cell, [{"x": 2}], experiment_id="fig")
        assert payload == {
            "scalar": 2.0,
            "array": [0, 2, 4],
            "nested": {"flag": True},
        }
        assert type(payload["scalar"]) is float
        assert type(payload["array"]) is list

    def test_warm_cache_skips_recompute(self, tmp_path):
        cells = [{"x": 1, "seed": 7}, {"x": 2, "seed": 7}]
        CALLS["count"] = 0
        with SweepOrchestrator(SweepConfig(cache_dir=tmp_path)) as sweep:
            cold = sweep.map_cells(counting_cell, cells, experiment_id="fig")
            assert CALLS["count"] == 2
            assert (sweep.hits, sweep.misses) == (0, 2)
            warm = sweep.map_cells(counting_cell, cells, experiment_id="fig")
        assert CALLS["count"] == 2
        assert (sweep.hits, sweep.misses) == (2, 2)
        assert warm == cold

    def test_changed_seed_recomputes(self, tmp_path):
        CALLS["count"] = 0
        with SweepOrchestrator(SweepConfig(cache_dir=tmp_path)) as sweep:
            sweep.map_cells(counting_cell, [{"x": 1, "seed": 1}], experiment_id="fig")
            sweep.map_cells(counting_cell, [{"x": 1, "seed": 2}], experiment_id="fig")
        assert CALLS["count"] == 2

    def test_corrupted_entry_recomputed_and_repaired(self, tmp_path):
        cells = [{"x": 5, "seed": 7}]
        CALLS["count"] = 0
        with SweepOrchestrator(SweepConfig(cache_dir=tmp_path)) as sweep:
            [payload] = sweep.map_cells(counting_cell, cells, experiment_id="fig")
            key = cell_key("fig", cells[0])
            path = sweep.cache.entry_path("fig", key)
            path.write_text("{ corrupted")
            [recomputed] = sweep.map_cells(counting_cell, cells, experiment_id="fig")
            assert recomputed == payload
            assert CALLS["count"] == 2
            # The repaired entry is valid again and hits on the next pass.
            [warm] = sweep.map_cells(counting_cell, cells, experiment_id="fig")
            assert warm == payload
            assert CALLS["count"] == 2

    def test_parallel_matches_serial(self, tmp_path):
        cells = [{"x": value} for value in range(5)]
        serial = sweep_map(double_cell, cells, experiment_id="fig")
        with SweepOrchestrator(SweepConfig(workers=2)) as sweep:
            parallel = sweep.map_cells(double_cell, cells, experiment_id="fig")
        assert parallel == serial

    def test_parallel_populates_cache_for_warm_serial_run(self, tmp_path):
        cells = [{"x": value} for value in range(4)]
        with SweepOrchestrator(
            SweepConfig(workers=2, cache_dir=tmp_path)
        ) as sweep:
            cold = sweep.map_cells(double_cell, cells, experiment_id="fig")
        with SweepOrchestrator(SweepConfig(cache_dir=tmp_path)) as warm_sweep:
            warm = warm_sweep.map_cells(double_cell, cells, experiment_id="fig")
        assert warm == cold
        assert warm_sweep.hits == len(cells)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            SweepConfig(workers=0)

    def test_jsonable_handles_numpy_trees(self):
        converted = jsonable(
            {"a": np.float32(1.5), "b": np.array([[1, 2]]), 3: "x"}
        )
        assert converted == {"a": 1.5, "b": [[1, 2]], "3": "x"}


class TestExperimentIntegration:
    def test_grid_experiments_declare_sweep(self):
        for experiment_id in ("fig15", "fig15_mc", "fig50_51_mc"):
            assert accepts_sweep(experiment_id), experiment_id
        for experiment_id in ("table5", "design_example", "fig19"):
            assert not accepts_sweep(experiment_id), experiment_id

    def test_run_experiment_threads_orchestrator(self, monkeypatch):
        from repro.experiments import registry, run_experiment
        from repro.experiments.base import ExperimentResult

        received = {}

        def fake_grid(seed=None, sweep=None):
            received["sweep"] = sweep
            return ExperimentResult("fake_grid", "t", {"ok": True}, "r" * 50)

        monkeypatch.setitem(registry, "fake_grid", fake_grid)
        with SweepOrchestrator() as sweep:
            run_experiment("fake_grid", sweep=sweep)
            assert received["sweep"] is sweep
        run_experiment("fake_grid")
        assert received["sweep"] is None

    def test_grid_cells_cover_the_original_loops(self):
        from repro.experiments.figure15_mc import GRID as fig15_mc_grid
        from repro.experiments.figure50_51_mc import GRID as fig50_51_mc_grid

        assert len(fig50_51_mc_grid) == 12
        assert len(fig15_mc_grid) == 16
        first = next(iter(fig15_mc_grid))
        assert first == {
            "scheme": "proposed",
            "corner": "slow",
            "frequency_mhz": 100.0,
            "load": "constant",
        }

"""Direct tests for the plain-text report formatters.

``format_table`` / ``format_series`` render every experiment's output, but
until now they were only exercised indirectly through the experiment
harnesses -- which never hit the edge cases (empty row lists, non-string
cells, ragged rows, subsampled series).
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import format_series, format_table


class TestFormatTable:
    def test_aligns_columns_to_the_widest_cell(self):
        text = format_table(
            headers=["Name", "Value"],
            rows=[["a", 1], ["longer-name", 22]],
        )
        lines = text.splitlines()
        assert lines[0] == "Name        | Value"
        assert lines[1] == "------------+------"
        assert lines[2] == "a           | 1    "
        assert lines[3] == "longer-name | 22   "
        # Every rendered line has the same width.
        assert len({len(line) for line in lines}) == 1

    def test_title_is_the_first_line(self):
        text = format_table(headers=["H"], rows=[["x"]], title="The title")
        assert text.splitlines()[0] == "The title"

    def test_empty_rows_render_headers_and_rule_only(self):
        text = format_table(headers=["A", "B"], rows=[])
        lines = text.splitlines()
        assert lines == ["A | B", "--+--"]

    def test_non_string_cells_are_stringified(self):
        text = format_table(
            headers=["Kind", "Value"],
            rows=[
                ["float", 0.123456],
                ["int", 7],
                ["bool", True],
                ["none", None],
            ],
        )
        assert "0.123" in text  # floats render through %.3g
        assert "7" in text
        assert "True" in text
        assert "None" in text

    def test_float_cells_use_general_format(self):
        text = format_table(headers=["V"], rows=[[1234567.0], [0.000012345]])
        assert "1.23e+06" in text
        assert "1.23e-05" in text

    def test_header_cell_count_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="row 1 has 1 cells"):
            format_table(headers=["A", "B"], rows=[["x", "y"], ["only-one"]])

    def test_header_wider_than_cells_sets_the_width(self):
        text = format_table(headers=["Wide header"], rows=[["x"]])
        lines = text.splitlines()
        assert lines[1] == "-" * len("Wide header")
        assert lines[2] == "x".ljust(len("Wide header"))


class TestFormatSeries:
    def test_renders_shared_x_axis(self):
        text = format_series(
            x_label="t",
            x_values=[0, 1, 2],
            series={"a": [1.0, 2.0, 3.0], "b": [9.0, 8.0, 7.0]},
        )
        lines = text.splitlines()
        assert lines[0].split(" | ") == ["t", "a", "b"]
        assert len(lines) == 2 + 3

    def test_length_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="series 'a' has 2 points"):
            format_series("x", [1, 2, 3], {"a": [1.0, 2.0]})

    def test_max_rows_subsamples_but_keeps_the_last_point(self):
        x_values = list(range(100))
        text = format_series(
            "x", x_values, {"y": [float(x) for x in x_values]}, max_rows=10
        )
        lines = text.splitlines()
        # Subsampled well below 100 rows, but the final x value survives.
        assert len(lines) < 20
        assert lines[-1].startswith("99")

    def test_max_rows_larger_than_series_keeps_everything(self):
        text = format_series("x", [1, 2], {"y": [1.0, 2.0]}, max_rows=50)
        assert len(text.splitlines()) == 4  # header + rule + both rows

    def test_empty_series_mapping_renders_x_only(self):
        text = format_series("x", [1, 2], {})
        lines = text.splitlines()
        assert lines[0] == "x"
        assert lines[2] == "1"
        assert lines[3] == "2"

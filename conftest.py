"""Repository-level pytest configuration.

Makes ``src/`` importable even when the package has not been pip-installed
(useful on the offline environments this repository targets, where
``pip install -e .`` may be unable to fetch the ``wheel`` build dependency).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
